(* Vote Collector node: the paper's Algorithm 1 (voting protocol) plus
   the Vote Set Consensus protocol of Section III-E.

   Voting: on VOTE the responder validates the code against the salted
   hashes, gathers Nv - fv signed ENDORSEMENTs into a uniqueness
   certificate (UCERT), then the nodes disclose their receipt shares
   (VOTE_P, gated on a valid UCERT) until Nv - fv shares reconstruct
   the 64-bit receipt that goes back to the voter.

   Vote Set Consensus: at election end every node ANNOUNCEs what it
   knows (batched), adopts any UCERT-certified vote code it was
   missing, then enters one batched Bracha binary consensus over all
   ballots ("is this ballot voted?"), recovers missing codes from
   peers (RECOVER-REQUEST), and submits the agreed set and its msk
   share to every BB node.

   The node is written sans-IO: all effects go through [env], so unit
   tests drive it directly and the simulator supplies transports.

   Durability: with [env.durable] set, every state transition that must
   survive a crash is logged to a {!Dd_store.Store} WAL *after* the
   in-memory mutation and *before* any externally visible send — the
   load-bearing case being the endorsed code, which is durable before
   an ENDORSEMENT signature leaves the node (otherwise a crashed and
   restarted collector could sign a second code for the same ballot and
   hand the adversary two UCERTs). [recover] rebuilds the node from
   snapshot + log replay; a node that crashed mid-consensus does not
   rejoin the running instance (it has no protocol state to resume, and
   restarting RBC from scratch would equivocate). *)

module Shamir_bytes = Dd_vss.Shamir_bytes
module Rbc = Dd_consensus.Rbc
module Binary_batch = Dd_consensus.Binary_batch
module Store = Dd_store.Store
module Wire = Dd_codec.Wire

type env = {
  me : int;
  cfg : Types.config;
  keys : Auth.keys;               (* VC clique; index nv is the EA *)
  store : Ballot_store.t;
  now : unit -> float;
  election_start : float;
  election_end : unit -> float;
  send_vc : dst:int -> Messages.vc_msg -> unit;
  reply : client:int -> req:int -> Types.vote_outcome -> unit;
  send_bb : dst:int -> Messages.bb_msg -> unit;
  rng : Dd_crypto.Drbg.t;
  consensus_coin : Binary_batch.coin;
  (* when false (modeled runs without EA tags), receipt shares are
     accepted based on shape alone *)
  verify_share_tags : bool;
  (* override for authenticator checks; must be semantically identical
     to [Auth.verify] (the serving runtime's amortizing verifier) *)
  verify_tag : (signer:int -> string -> Auth.tag -> bool) option;
  (* durable device for the WAL + snapshot store; [None] runs the node
     memory-only (the scale benchmarks) *)
  durable : Dd_store.Device.t option;
}

type ballot_rt = {
  mutable status : Types.vc_status;
  mutable endorsed : string option;          (* the one code I endorsed *)
  mutable ucert : Messages.ucert option;
  mutable part : Types.part_id;
  mutable pos : int;
  (* responder-side endorsement collection *)
  mutable collecting : string option;
  mutable endorsements : (int * Auth.tag) list;
  (* receipt share collection *)
  mutable shares : Shamir_bytes.share list;  (* deduped by x *)
  mutable sent_vote_p : bool;
  mutable waiting_clients : (int * int) list;
}

type phase = Voting | Vsc | Submitted

type vsc_state = {
  mutable announce_senders : int list;
  mutable consensus_started : bool;
  mutable rbc : Rbc.t option;
  mutable bb : Binary_batch.t option;
  mutable rbc_seq : int;
  mutable decided_count : int;
  (* allocated lazily at consensus start: elections can register
     hundreds of millions of ballots (Fig. 5a) *)
  mutable decisions : bool option array;
  mutable awaiting_recovery : (int, unit) Hashtbl.t;
  mutable submitted : bool;
  (* consensus messages and announcements can arrive before this node
     reaches its own election end (clock drift): buffer them *)
  mutable pending_consensus : (int * Rbc.msg) list;
}

type t = {
  env : env;
  ballots : (int, ballot_rt) Hashtbl.t;
  mutable phase : phase;
  vsc : vsc_state;
  quorum : int;                                (* Nv - fv *)
  (* counters for observability *)
  mutable votes_accepted : int;
  mutable receipts_issued : int;
  (* valid UCERTs seen for a code conflicting with one we already hold
     certified: (serial, our code, their code). Non-empty only when
     more than fv collectors equivocated (Section III-D's uniqueness
     argument) — the chaos harness's detection signal. *)
  mutable ucert_conflicts : (int * string * string) list;
  (* durable store, attached after construction (the snapshot closure
     needs [t]); never set while [recovering] replays the log *)
  mutable wal : Store.t option;
  mutable recovering : bool;
}

let create_bare env =
  { env;
    ballots = Hashtbl.create 1024;
    phase = Voting;
    vsc =
      { announce_senders = []; consensus_started = false; rbc = None; bb = None;
        rbc_seq = 0; decided_count = 0;
        decisions = [||];
        awaiting_recovery = Hashtbl.create 16; submitted = false;
        pending_consensus = [] };
    quorum = env.cfg.Types.nv - env.cfg.Types.fv;
    votes_accepted = 0;
    receipts_issued = 0;
    ucert_conflicts = [];
    wal = None;
    recovering = false }

let ballot_rt t serial =
  match Hashtbl.find_opt t.ballots serial with
  | Some b -> b
  | None ->
    let b =
      { status = Types.Not_voted; endorsed = None; ucert = None;
        part = Types.A; pos = 0; collecting = None; endorsements = [];
        shares = []; sent_vote_p = false; waiting_clients = [] }
    in
    Hashtbl.replace t.ballots serial b;
    b

let within_hours t =
  let now = t.env.now () in
  now >= t.env.election_start && now < t.env.election_end ()

let peers t = List.init t.env.cfg.Types.nv (fun i -> i) |> List.filter (fun i -> i <> t.env.me)

let multicast t msg = List.iter (fun dst -> t.env.send_vc ~dst msg) (peers t)

let election_id t = t.env.cfg.Types.election_id

(* --- WAL records -------------------------------------------------------- *)

(* One record per crash-critical transition. Each reducer case mirrors
   exactly the mutation set of its logging site; transient collection
   state (endorsement gathering, waiting clients, live consensus
   objects) is deliberately not persisted — a restarted node abandons
   in-flight quorum collection and the client's retry restarts it. *)
type wal_rec =
  | R_vote_accepted of { serial : int; code : string; part : Types.part_id; pos : int }
  | R_endorsed of { serial : int; code : string; part : Types.part_id; pos : int }
  (* [endorse] distinguishes the VOTE_P adoption site (which also binds
     part/pos and the endorsed code) from sites where they are already
     durable or deliberately untouched *)
  | R_ucert of { ucert : Messages.ucert; part : Types.part_id; pos : int; endorse : bool }
  | R_sent_vote_p of int
  | R_share of { serial : int; share : Shamir_bytes.share }
  | R_receipt of { serial : int; code : string; receipt : string }
  | R_conflict of { serial : int; ours : string; theirs : string }
  | R_phase_vsc
  | R_announce_from of int
  | R_consensus_started
  | R_decided of { slot : int; value : bool }
  | R_submitted

let encode_rec t rc =
  let gctx = t.env.keys.Auth.gctx in
  let w = Wire.writer () in
  (match rc with
   | R_vote_accepted { serial; code; part; pos } ->
     Wire.put_varint w 0; Wire.put_varint w serial; Wire.put_bytes w code;
     Messages.put_part w part; Wire.put_varint w pos
   | R_endorsed { serial; code; part; pos } ->
     Wire.put_varint w 1; Wire.put_varint w serial; Wire.put_bytes w code;
     Messages.put_part w part; Wire.put_varint w pos
   | R_ucert { ucert; part; pos; endorse } ->
     Wire.put_varint w 2; Messages.put_ucert gctx w ucert;
     Messages.put_part w part; Wire.put_varint w pos; Wire.put_bool w endorse
   | R_sent_vote_p serial -> Wire.put_varint w 3; Wire.put_varint w serial
   | R_share { serial; share } ->
     Wire.put_varint w 4; Wire.put_varint w serial; Messages.put_share w share
   | R_receipt { serial; code; receipt } ->
     Wire.put_varint w 5; Wire.put_varint w serial; Wire.put_bytes w code;
     Wire.put_bytes w receipt
   | R_conflict { serial; ours; theirs } ->
     Wire.put_varint w 6; Wire.put_varint w serial; Wire.put_bytes w ours;
     Wire.put_bytes w theirs
   | R_phase_vsc -> Wire.put_varint w 7
   | R_announce_from sender -> Wire.put_varint w 8; Wire.put_varint w sender
   | R_consensus_started -> Wire.put_varint w 9
   | R_decided { slot; value } ->
     Wire.put_varint w 10; Wire.put_varint w slot; Wire.put_bool w value
   | R_submitted -> Wire.put_varint w 11);
  Wire.contents w

let decode_rec t payload =
  let gctx = t.env.keys.Auth.gctx in
  Wire.decode payload (fun r ->
      match Wire.get_varint r with
      | 0 ->
        let serial = Wire.get_varint r in
        let code = Wire.get_bytes r in
        let part = Messages.get_part r in
        let pos = Wire.get_varint r in
        R_vote_accepted { serial; code; part; pos }
      | 1 ->
        let serial = Wire.get_varint r in
        let code = Wire.get_bytes r in
        let part = Messages.get_part r in
        let pos = Wire.get_varint r in
        R_endorsed { serial; code; part; pos }
      | 2 ->
        let ucert = Messages.get_ucert gctx r in
        let part = Messages.get_part r in
        let pos = Wire.get_varint r in
        let endorse = Wire.get_bool r in
        R_ucert { ucert; part; pos; endorse }
      | 3 -> R_sent_vote_p (Wire.get_varint r)
      | 4 ->
        let serial = Wire.get_varint r in
        R_share { serial; share = Messages.get_share r }
      | 5 ->
        let serial = Wire.get_varint r in
        let code = Wire.get_bytes r in
        R_receipt { serial; code; receipt = Wire.get_bytes r }
      | 6 ->
        let serial = Wire.get_varint r in
        let ours = Wire.get_bytes r in
        R_conflict { serial; ours; theirs = Wire.get_bytes r }
      | 7 -> R_phase_vsc
      | 8 -> R_announce_from (Wire.get_varint r)
      | 9 -> R_consensus_started
      | 10 ->
        let slot = Wire.get_varint r in
        R_decided { slot; value = Wire.get_bool r }
      | 11 -> R_submitted
      | _ -> raise (Wire.Malformed "vc wal record"))

(* Append + sync: the record is on the platter before the caller's next
   send. No-op without a device or while replaying. [?sync:false] is
   for pure-liveness bookkeeping whose loss at a crash is safe — it
   leaves an unsynced tail the crash may tear mid-frame, which is
   exactly what recovery's clean-prefix scan must tolerate. *)
let log_rec ?(sync = true) t rc =
  match t.wal with
  | Some store when not t.recovering -> Store.log ~sync store (encode_rec t rc)
  | Some _ | None -> ()

(* Callers pass a [code] backed by a UCERT they already verified: if we
   hold a certified code for the same serial and it differs, two valid
   uniqueness certificates exist — record the safety violation. *)
let note_conflict t serial (b : ballot_rt) ~code =
  match b.ucert with
  | Some u when not (Dd_crypto.Ct.equal u.Messages.u_code code) ->
    if not
        (List.exists
           (fun (s, _, theirs) -> s = serial && Dd_crypto.Ct.equal theirs code)
           t.ucert_conflicts)
    then begin
      t.ucert_conflicts <- (serial, u.Messages.u_code, code) :: t.ucert_conflicts;
      log_rec t (R_conflict { serial; ours = u.Messages.u_code; theirs = code })
    end
  | Some _ | None -> ()

(* All authenticator checks funnel through here so a host runtime can
   substitute an amortizing verifier (env.verify_tag); the default is a
   direct [Auth.verify]. *)
let verify_tag t ~signer body tag =
  match t.env.verify_tag with
  | Some f -> f ~signer body tag
  | None -> Auth.verify t.env.keys ~signer body tag

let verify_ucert t ucert =
  Messages.verify_ucert_with ?verify:t.env.verify_tag t.env.keys
    ~election_id:(election_id t) ~quorum:t.quorum ucert

let verify_receipt_share t ~serial ~part ~pos ~node (share : Shamir_bytes.share) tag =
  share.Shamir_bytes.x = node + 1
  && String.length share.Shamir_bytes.data = Types.receipt_bytes
  && begin
    if not t.env.verify_share_tags then true
    else
      match tag with
      | None -> false
      | Some tag ->
        let body = Messages.share_body ~election_id:(election_id t) ~serial ~part ~pos ~node ~share in
        verify_tag t ~signer:t.env.cfg.Types.nv body tag
  end

let own_share t ~serial ~part ~pos =
  let lines = Ballot_store.lines t.env.store ~serial ~part in
  let line = lines.(pos) in
  (line.Types.receipt_share, line.Types.share_tag)

let add_share b (share : Shamir_bytes.share) =
  if List.exists (fun s -> s.Shamir_bytes.x = share.Shamir_bytes.x) b.shares then false
  else begin
    b.shares <- share :: b.shares;
    true
  end

(* Reconstruct once we hold exactly the quorum of distinct shares. *)
let try_reconstruct t serial (b : ballot_rt) code =
  if List.length b.shares >= t.quorum then begin
    let selected =
      List.sort (fun a c -> compare a.Shamir_bytes.x c.Shamir_bytes.x) b.shares
      |> List.filteri (fun i _ -> i < t.quorum)
    in
    let receipt = Shamir_bytes.reconstruct ~threshold:t.quorum selected in
    b.status <- Types.Voted (code, receipt);
    t.receipts_issued <- t.receipts_issued + 1;
    log_rec t (R_receipt { serial; code; receipt });
    List.iter
      (fun (client, req) -> t.env.reply ~client ~req (Types.Receipt receipt))
      b.waiting_clients;
    b.waiting_clients <- []
  end

(* Disclose our own share: the VOTE_P multicast (only ever once). *)
let disclose_share t ~serial ~code (b : ballot_rt) =
  if not b.sent_vote_p then begin
    b.sent_vote_p <- true;
    let share, share_tag = own_share t ~serial ~part:b.part ~pos:b.pos in
    ignore (add_share b share);
    log_rec t (R_sent_vote_p serial);
    match b.ucert with
    | None -> ()   (* cannot happen: callers establish the UCERT first *)
    | Some ucert ->
      multicast t
        (Messages.Vote_p
           { serial; vote_code = code; sender = t.env.me; part = b.part; pos = b.pos;
             share; share_tag; ucert })
  end

(* --- Algorithm 1: ON VOTE -------------------------------------------- *)

let on_vote t ~client ~req ~serial ~vote_code =
  if not (within_hours t) then
    t.env.reply ~client ~req (Types.Rejected "outside election hours")
  else begin
    let b = ballot_rt t serial in
    match b.status with
    | Types.Voted (code, receipt) ->
      if Dd_crypto.Ct.equal code vote_code then
        t.env.reply ~client ~req (Types.Receipt receipt)
      else t.env.reply ~client ~req (Types.Rejected "ballot already voted")
    | Types.Pending code ->
      if Dd_crypto.Ct.equal code vote_code then
        b.waiting_clients <- (client, req) :: b.waiting_clients
      else t.env.reply ~client ~req (Types.Rejected "another vote code pending")
    | Types.Not_voted ->
      match b.collecting, b.endorsed with
      | Some code, _ when Dd_crypto.Ct.equal code vote_code ->
        (* we are already the responder for this code: just wait *)
        b.waiting_clients <- (client, req) :: b.waiting_clients
      | Some _, _ ->
        t.env.reply ~client ~req (Types.Rejected "another vote code pending")
      | None, Some code when not (Dd_crypto.Ct.equal code vote_code) ->
        t.env.reply ~client ~req (Types.Rejected "conflicting vote code endorsed")
      | None, _ ->
        match Ballot_store.verify_vote_code t.env.store ~serial ~vote_code with
        | None -> t.env.reply ~client ~req (Types.Rejected "invalid vote code")
        | Some (part, pos, _line) ->
          t.votes_accepted <- t.votes_accepted + 1;
          b.part <- part;
          b.pos <- pos;
          b.collecting <- Some vote_code;
          b.endorsed <- Some vote_code;
          b.waiting_clients <- (client, req) :: b.waiting_clients;
          (* endorse it ourselves, then gather the rest *)
          let body = Messages.endorsement_body ~election_id:(election_id t) ~serial ~code:vote_code in
          b.endorsements <- [ (t.env.me, Auth.sign t.env.keys body) ];
          log_rec t (R_vote_accepted { serial; code = vote_code; part; pos });
          multicast t (Messages.Endorse { serial; vote_code; responder = t.env.me })
  end

(* --- ON ENDORSE ------------------------------------------------------- *)

let on_endorse t ~responder ~serial ~vote_code =
  if within_hours t then begin
    let b = ballot_rt t serial in
    let compatible =
      match b.endorsed, b.status with
      | _, Types.Voted (code, _) -> Dd_crypto.Ct.equal code vote_code
      | Some code, _ -> Dd_crypto.Ct.equal code vote_code
      | None, _ -> true
    in
    if compatible then begin
      match Ballot_store.verify_vote_code t.env.store ~serial ~vote_code with
      | None -> ()
      | Some (part, pos, _) ->
        let fresh =
          match b.endorsed with
          | Some code -> not (Dd_crypto.Ct.equal code vote_code)
          | None -> true
        in
        b.endorsed <- Some vote_code;
        if b.status = Types.Not_voted && b.collecting = None then begin
          b.part <- part;
          b.pos <- pos
        end;
        (* the endorsed code must be durable before our signature leaves:
           a restart that forgot it could sign a conflicting code and
           mint the adversary a second UCERT *)
        if fresh then log_rec t (R_endorsed { serial; code = vote_code; part; pos });
        let body = Messages.endorsement_body ~election_id:(election_id t) ~serial ~code:vote_code in
        t.env.send_vc ~dst:responder
          (Messages.Endorsement
             { serial; vote_code; signer = t.env.me; tag = Auth.sign t.env.keys body })
    end
  end

(* --- ON ENDORSEMENT (responder side) ----------------------------------- *)

let on_endorsement t ~signer ~serial ~vote_code ~tag =
  if within_hours t then begin
    let b = ballot_rt t serial in
    match b.collecting with
    | Some code when Dd_crypto.Ct.equal code vote_code && b.ucert = None ->
      let body = Messages.endorsement_body ~election_id:(election_id t) ~serial ~code in
      if verify_tag t ~signer body tag
      && not (List.mem_assoc signer b.endorsements) then begin
        b.endorsements <- (signer, tag) :: b.endorsements;
        if List.length b.endorsements >= t.quorum then begin
          let ucert =
            { Messages.u_serial = serial; Messages.u_code = code;
              Messages.endorsements = b.endorsements }
          in
          b.ucert <- Some ucert;
          b.status <- Types.Pending code;
          log_rec t (R_ucert { ucert; part = b.part; pos = b.pos; endorse = false });
          disclose_share t ~serial ~code b;
          try_reconstruct t serial b code
        end
      end
    | _ -> ()
  end

(* --- ON VOTE_P --------------------------------------------------------- *)

let on_vote_p t ~sender ~serial ~vote_code ~part ~pos ~share ~share_tag ~ucert =
  if within_hours t
  && verify_ucert t ucert
  && ucert.Messages.u_serial = serial
  && Dd_crypto.Ct.equal ucert.Messages.u_code vote_code
  then begin
    let b = ballot_rt t serial in
    note_conflict t serial b ~code:vote_code;
    let lines = Ballot_store.lines t.env.store ~serial ~part in
    let pos_ok = pos >= 0 && pos < Array.length lines in
    (* the sender's disclosed share must carry the EA's authenticator
       for (serial, part, pos, sender) *)
    let share_ok =
      pos_ok && verify_receipt_share t ~serial ~part ~pos ~node:sender share share_tag
    in
    if share_ok then begin
    let accept_share () =
      if add_share b share then log_rec t (R_share { serial; share })
    in
    match b.status with
    | Types.Not_voted ->
      (match b.endorsed with
       | Some code when not (Dd_crypto.Ct.equal code vote_code) -> ()
       | _ ->
         if pos_ok then begin
           b.part <- part;
           b.pos <- pos;
           b.endorsed <- Some vote_code;
           b.ucert <- Some ucert;
           b.status <- Types.Pending vote_code;
           log_rec t (R_ucert { ucert; part; pos; endorse = true });
           accept_share ();
           disclose_share t ~serial ~code:vote_code b;
           try_reconstruct t serial b vote_code
         end)
    | Types.Pending code when Dd_crypto.Ct.equal code vote_code ->
      if b.ucert = None then begin
        b.ucert <- Some ucert;
        log_rec t (R_ucert { ucert; part = b.part; pos = b.pos; endorse = false })
      end;
      accept_share ();
      disclose_share t ~serial ~code b;
      try_reconstruct t serial b code
    | Types.Voted (code, _) when Dd_crypto.Ct.equal code vote_code ->
      accept_share ()
    | Types.Pending _ | Types.Voted _ -> ()
    end
  end

(* --- Vote Set Consensus ------------------------------------------------ *)

let known_entries t =
  Hashtbl.fold
    (fun serial (b : ballot_rt) acc ->
       match b.ucert, b.status with
       | Some ucert, (Types.Pending code | Types.Voted (code, _)) ->
         (serial, code, ucert) :: acc
       | _ -> acc)
    t.ballots []

let send_submission t =
  let set = ref [] in
  for serial = t.env.cfg.Types.n_voters - 1 downto 0 do
    match t.vsc.decisions.(serial) with
    | Some true ->
      let b = ballot_rt t serial in
      (match b.status, b.ucert with
       | (Types.Pending code | Types.Voted (code, _)), _ -> set := (serial, code) :: !set
       | Types.Not_voted, Some ucert -> set := (serial, ucert.Messages.u_code) :: !set
       | Types.Not_voted, None -> () (* recovery failed: impossible with honest quorum *))
    | Some false | None -> ()
  done;
  let msg =
    Messages.Vote_set_submit
      { sender = t.env.me; set = !set; msk_share = Ballot_store.msk_share t.env.store }
  in
  for bb = 0 to t.env.cfg.Types.nb - 1 do
    t.env.send_bb ~dst:bb msg
  done

let submit_to_bb t =
  if not t.vsc.submitted then begin
    t.vsc.submitted <- true;
    t.phase <- Submitted;
    log_rec t R_submitted;
    send_submission t
  end

let check_recovery_complete t =
  if t.vsc.consensus_started
  && t.vsc.decided_count = t.env.cfg.Types.n_voters
  && Hashtbl.length t.vsc.awaiting_recovery = 0
  then submit_to_bb t

let on_decide t slot value =
  t.vsc.decisions.(slot) <- Some value;
  t.vsc.decided_count <- t.vsc.decided_count + 1;
  if value then begin
    let b = ballot_rt t slot in
    match b.ucert with
    | Some _ -> ()
    | None -> Hashtbl.replace t.vsc.awaiting_recovery slot ()
  end;
  log_rec t (R_decided { slot; value });
  if t.vsc.decided_count = t.env.cfg.Types.n_voters then begin
    let missing = Hashtbl.fold (fun s () acc -> s :: acc) t.vsc.awaiting_recovery [] in
    if missing <> [] then
      multicast t (Messages.Recover_request { sender = t.env.me; serials = missing });
    check_recovery_complete t
  end

let start_consensus t =
  if not t.vsc.consensus_started then begin
    t.vsc.consensus_started <- true;
    t.vsc.decisions <- Array.make t.env.cfg.Types.n_voters None;
    (* durable before Binary_batch.start broadcasts anything: a restart
       must never re-enter an instance it already spoke in *)
    log_rec t R_consensus_started;
    let n = t.env.cfg.Types.nv and f = t.env.cfg.Types.fv in
    let me = t.env.me in
    let rbc = ref None in
    let send_all m =
      (* deliver to self synchronously, then to peers over the network *)
      (match !rbc with Some r -> Rbc.on_message r ~from:me m | None -> ());
      multicast t (Messages.Consensus { sender = me; rbc = m })
    in
    let bb = ref None in
    let deliver ~origin ~tag:_ payload =
      match !bb with
      | Some b -> Binary_batch.on_deliver b ~from:origin payload
      | None -> ()
    in
    let r = Rbc.create ~n ~f ~me ~send_all ~deliver in
    rbc := Some r;
    t.vsc.rbc <- Some r;
    let initial =
      Array.init t.env.cfg.Types.n_voters (fun serial ->
          match Hashtbl.find_opt t.ballots serial with
          | Some b -> b.ucert <> None
          | None -> false)
    in
    let broadcast payload =
      t.vsc.rbc_seq <- t.vsc.rbc_seq + 1;
      Rbc.broadcast r ~tag:(Printf.sprintf "bc/%d/%d" me t.vsc.rbc_seq) payload
    in
    let b =
      Binary_batch.create ~n ~f ~me ~slots:t.env.cfg.Types.n_voters ~initial
        ~coin:t.env.consensus_coin ~rng:t.env.rng ~broadcast
        ~on_decide:(fun slot value -> on_decide t slot value)
    in
    bb := Some b;
    t.vsc.bb <- Some b;
    Binary_batch.start b;
    (* drain consensus traffic that arrived before we started *)
    let buffered = List.rev t.vsc.pending_consensus in
    t.vsc.pending_consensus <- [];
    List.iter (fun (from, m) -> Rbc.on_message r ~from m) buffered
  end

(* Adopt an announced (serial, code, UCERT) if we were missing it. *)
let adopt_entry t (serial, code, ucert) =
  if serial >= 0 && serial < t.env.cfg.Types.n_voters
  && ucert.Messages.u_serial = serial
  && Dd_crypto.Ct.equal ucert.Messages.u_code code
  && verify_ucert t ucert
  then begin
    let b = ballot_rt t serial in
    note_conflict t serial b ~code;
    if b.ucert = None then begin
      b.ucert <- Some ucert;
      (match b.status with
       | Types.Not_voted -> b.status <- Types.Pending code
       | Types.Pending _ | Types.Voted _ -> ());
      log_rec t (R_ucert { ucert; part = b.part; pos = b.pos; endorse = false })
    end;
    if Hashtbl.mem t.vsc.awaiting_recovery serial then begin
      Hashtbl.remove t.vsc.awaiting_recovery serial;
      check_recovery_complete t
    end
  end

let maybe_start_consensus t =
  if t.phase <> Voting
  && (not t.vsc.consensus_started)
  && List.length t.vsc.announce_senders >= t.quorum
  then start_consensus t

let start_vote_set_consensus t =
  if t.phase = Voting then begin
    t.phase <- Vsc;
    if not (List.mem t.env.me t.vsc.announce_senders) then begin
      t.vsc.announce_senders <- t.env.me :: t.vsc.announce_senders;
      log_rec t (R_announce_from t.env.me)
    end;
    log_rec t R_phase_vsc;
    let entries = known_entries t in
    let msg = Messages.Announce_batch { sender = t.env.me; entries } in
    multicast t msg;
    maybe_start_consensus t
  end

let on_announce_batch t ~sender ~entries =
  (* announcements are self-certifying (UCERTs), so we accept them even
     if our own clock has not reached election end yet *)
  if not (List.mem sender t.vsc.announce_senders) then begin
    t.vsc.announce_senders <- sender :: t.vsc.announce_senders;
    (* liveness-only bookkeeping: losing it merely makes the recovered
       node wait for a re-announce, so skip the sync barrier (any
       adopted UCERT below carries a synced record that covers it) *)
    log_rec ~sync:false t (R_announce_from sender);
    List.iter (adopt_entry t) entries;
    maybe_start_consensus t
  end

let on_consensus t ~sender ~rbc_msg =
  match t.vsc.rbc with
  | Some r -> Rbc.on_message r ~from:sender rbc_msg
  | None ->
    (* a recovered node with [consensus_started] but no live instance
       must not buffer (it will never drain): it sat out this round *)
    if not t.vsc.consensus_started then
      t.vsc.pending_consensus <- (sender, rbc_msg) :: t.vsc.pending_consensus

let on_recover_request t ~sender ~serials =
  if t.phase <> Voting then begin
    let entries =
      List.filter_map
        (fun serial ->
           match Hashtbl.find_opt t.ballots serial with
           | Some b ->
             (match b.ucert, b.status with
              | Some ucert, (Types.Pending code | Types.Voted (code, _)) ->
                Some (serial, code, ucert)
              | Some ucert, Types.Not_voted ->
                Some (serial, ucert.Messages.u_code, ucert)
              | None, _ -> None)
           | None -> None)
        serials
    in
    if entries <> [] then
      t.env.send_vc ~dst:sender (Messages.Recover_response { sender = t.env.me; entries })
  end

let on_recover_response t ~sender:_ ~entries =
  if t.phase <> Voting then List.iter (adopt_entry t) entries

(* --- dispatch ---------------------------------------------------------- *)

(* Dispatch guard: network input can be garbled or hostile, so reject
   any message naming a peer id outside the cluster before a handler
   uses it as a reply destination or a counting key. Deeper fields
   (serials, positions, shares, tags) are validated by the handlers
   against the ballot store and the EA's authenticators. *)
let peer_plausible t (msg : Messages.vc_msg) =
  let node i = i >= 0 && i < t.env.cfg.Types.nv in
  match msg with
  | Messages.Vote _ -> true
  | Messages.Endorse { responder; _ } -> node responder
  | Messages.Endorsement { signer; _ } -> node signer
  | Messages.Vote_p { sender; _ } -> node sender
  | Messages.Announce_batch { sender; _ } -> node sender
  | Messages.Consensus { sender; _ } -> node sender
  | Messages.Recover_request { sender; _ } -> node sender
  | Messages.Recover_response { sender; _ } -> node sender

let handle t (msg : Messages.vc_msg) =
  if not (peer_plausible t msg) then ()
  else
  match msg with
  | Messages.Vote { serial; vote_code; client; req } -> on_vote t ~client ~req ~serial ~vote_code
  | Messages.Endorse { serial; vote_code; responder } -> on_endorse t ~responder ~serial ~vote_code
  | Messages.Endorsement { serial; vote_code; signer; tag } ->
    on_endorsement t ~signer ~serial ~vote_code ~tag
  | Messages.Vote_p { serial; vote_code; sender; part; pos; share; share_tag; ucert } ->
    on_vote_p t ~sender ~serial ~vote_code ~part ~pos ~share ~share_tag ~ucert
  | Messages.Announce_batch { sender; entries } -> on_announce_batch t ~sender ~entries
  | Messages.Consensus { sender; rbc } -> on_consensus t ~sender ~rbc_msg:rbc
  | Messages.Recover_request { sender; serials } -> on_recover_request t ~sender ~serials
  | Messages.Recover_response { sender; entries } -> on_recover_response t ~sender ~entries

(* --- durability: snapshot / restore / recover --------------------------- *)

(* The reducer: each case mirrors exactly the in-memory mutations of
   its logging site, never sends, and is idempotent (replay after a
   crash mid-compaction may present a record the snapshot already
   covers only across store generations, but duplicated protocol events
   — a re-received VOTE_P, say — must also coalesce). *)
let apply_rec t rc =
  match rc with
  | R_vote_accepted { serial; code; part; pos } ->
    let b = ballot_rt t serial in
    t.votes_accepted <- t.votes_accepted + 1;
    b.part <- part;
    b.pos <- pos;
    b.endorsed <- Some code
    (* collection state (collecting/endorsements/waiting) is transient:
       the client's retry restarts the endorsement round *)
  | R_endorsed { serial; code; part; pos } ->
    let b = ballot_rt t serial in
    b.endorsed <- Some code;
    if b.status = Types.Not_voted then begin
      b.part <- part;
      b.pos <- pos
    end
  | R_ucert { ucert; part; pos; endorse } ->
    let serial = ucert.Messages.u_serial in
    let b = ballot_rt t serial in
    if endorse then begin
      b.part <- part;
      b.pos <- pos;
      b.endorsed <- Some ucert.Messages.u_code
    end;
    if b.ucert = None then b.ucert <- Some ucert;
    if b.status = Types.Not_voted then b.status <- Types.Pending ucert.Messages.u_code;
    Hashtbl.remove t.vsc.awaiting_recovery serial
  | R_sent_vote_p serial ->
    let b = ballot_rt t serial in
    if not b.sent_vote_p then begin
      b.sent_vote_p <- true;
      let share, _tag = own_share t ~serial ~part:b.part ~pos:b.pos in
      ignore (add_share b share)
    end
  | R_share { serial; share } -> ignore (add_share (ballot_rt t serial) share)
  | R_receipt { serial; code; receipt } ->
    let b = ballot_rt t serial in
    (match b.status with
     | Types.Voted _ -> ()
     | Types.Not_voted | Types.Pending _ ->
       b.status <- Types.Voted (code, receipt);
       t.receipts_issued <- t.receipts_issued + 1)
  | R_conflict { serial; ours; theirs } ->
    if not
        (List.exists
           (fun (s, _, th) -> s = serial && Dd_crypto.Ct.equal th theirs)
           t.ucert_conflicts)
    then t.ucert_conflicts <- (serial, ours, theirs) :: t.ucert_conflicts
  | R_phase_vsc -> if t.phase = Voting then t.phase <- Vsc
  | R_announce_from sender ->
    if not (List.mem sender t.vsc.announce_senders) then
      t.vsc.announce_senders <- sender :: t.vsc.announce_senders
  | R_consensus_started ->
    if not t.vsc.consensus_started then begin
      t.vsc.consensus_started <- true;
      t.vsc.decisions <- Array.make t.env.cfg.Types.n_voters None
    end
  | R_decided { slot; value } ->
    if slot >= 0 && slot < Array.length t.vsc.decisions
    && t.vsc.decisions.(slot) = None then begin
      t.vsc.decisions.(slot) <- Some value;
      t.vsc.decided_count <- t.vsc.decided_count + 1;
      if value then begin
        let b = ballot_rt t slot in
        if b.ucert = None then Hashtbl.replace t.vsc.awaiting_recovery slot ()
      end
    end
  | R_submitted ->
    t.vsc.submitted <- true;
    t.phase <- Submitted

let put_status w = function
  | Types.Not_voted -> Wire.put_varint w 0
  | Types.Pending code ->
    Wire.put_varint w 1;
    Wire.put_bytes w code
  | Types.Voted (code, receipt) ->
    Wire.put_varint w 2;
    Wire.put_bytes w code;
    Wire.put_bytes w receipt

let get_status r =
  match Wire.get_varint r with
  | 0 -> Types.Not_voted
  | 1 -> Types.Pending (Wire.get_bytes r)
  | 2 ->
    let code = Wire.get_bytes r in
    Types.Voted (code, Wire.get_bytes r)
  | _ -> raise (Wire.Malformed "vc status")

(* A ballot entry created as a side effect of a lookup (a rejected
   probe, a consensus slot touch) carries no durable state: skip it so
   the snapshot is a function of the observable state only. *)
let ballot_blank (b : ballot_rt) =
  b.status = Types.Not_voted && b.endorsed = None && b.ucert = None
  && b.shares = [] && not b.sent_vote_p

(* Canonical (sorted) encoding: two nodes with the same observable
   state — whatever order events reached them in — snapshot to the same
   bytes, which is what the equivalence tests compare. *)
let snapshot t =
  let gctx = t.env.keys.Auth.gctx in
  let w = Wire.writer () in
  Wire.put_varint w 1;   (* snapshot format version *)
  Wire.put_varint w (match t.phase with Voting -> 0 | Vsc -> 1 | Submitted -> 2);
  Wire.put_varint w t.votes_accepted;
  Wire.put_varint w t.receipts_issued;
  Wire.put_list w
    (fun w (s, ours, theirs) ->
       Wire.put_varint w s;
       Wire.put_bytes w ours;
       Wire.put_bytes w theirs)
    (List.sort compare t.ucert_conflicts);
  Wire.put_list w Wire.put_varint (List.sort compare t.vsc.announce_senders);
  Wire.put_bool w t.vsc.consensus_started;
  Wire.put_bool w t.vsc.submitted;
  let decided = ref [] in
  Array.iteri
    (fun slot v -> match v with Some v -> decided := (slot, v) :: !decided | None -> ())
    t.vsc.decisions;
  Wire.put_list w
    (fun w (slot, v) ->
       Wire.put_varint w slot;
       Wire.put_bool w v)
    (List.rev !decided);
  let ballots =
    Hashtbl.fold
      (fun serial b acc -> if ballot_blank b then acc else (serial, b) :: acc)
      t.ballots []
    |> List.sort (fun (a, _) (c, _) -> compare a c)
  in
  Wire.put_list w
    (fun w (serial, (b : ballot_rt)) ->
       Wire.put_varint w serial;
       put_status w b.status;
       Wire.put_option w Wire.put_bytes b.endorsed;
       Wire.put_option w (Messages.put_ucert gctx) b.ucert;
       Messages.put_part w b.part;
       Wire.put_varint w b.pos;
       Wire.put_bool w b.sent_vote_p;
       Wire.put_list w Messages.put_share
         (List.sort (fun a c -> compare a.Shamir_bytes.x c.Shamir_bytes.x) b.shares))
    ballots;
  Wire.contents w

let restore env blob =
  let gctx = env.keys.Auth.gctx in
  Wire.decode blob (fun r ->
      if Wire.get_varint r <> 1 then raise (Wire.Malformed "vc snapshot version");
      let t = create_bare env in
      t.phase <-
        (match Wire.get_varint r with
         | 0 -> Voting
         | 1 -> Vsc
         | 2 -> Submitted
         | _ -> raise (Wire.Malformed "vc phase"));
      t.votes_accepted <- Wire.get_varint r;
      t.receipts_issued <- Wire.get_varint r;
      t.ucert_conflicts <-
        Wire.get_list r (fun r ->
            let s = Wire.get_varint r in
            let ours = Wire.get_bytes r in
            let theirs = Wire.get_bytes r in
            (s, ours, theirs));
      t.vsc.announce_senders <- Wire.get_list r Wire.get_varint;
      t.vsc.consensus_started <- Wire.get_bool r;
      t.vsc.submitted <- Wire.get_bool r;
      let decided =
        Wire.get_list r (fun r ->
            let slot = Wire.get_varint r in
            (slot, Wire.get_bool r))
      in
      if t.vsc.consensus_started then begin
        t.vsc.decisions <- Array.make env.cfg.Types.n_voters None;
        List.iter
          (fun (slot, v) ->
             if slot < 0 || slot >= Array.length t.vsc.decisions then
               raise (Wire.Malformed "vc decided slot");
             if t.vsc.decisions.(slot) = None then begin
               t.vsc.decisions.(slot) <- Some v;
               t.vsc.decided_count <- t.vsc.decided_count + 1
             end)
          decided
      end;
      let entries =
        Wire.get_list r (fun r ->
            let serial = Wire.get_varint r in
            let status = get_status r in
            let endorsed = Wire.get_option r Wire.get_bytes in
            let ucert = Wire.get_option r (Messages.get_ucert gctx) in
            let part = Messages.get_part r in
            let pos = Wire.get_varint r in
            let sent_vote_p = Wire.get_bool r in
            let shares = Wire.get_list r Messages.get_share in
            (serial, status, endorsed, ucert, part, pos, sent_vote_p, shares))
      in
      List.iter
        (fun (serial, status, endorsed, ucert, part, pos, sent_vote_p, shares) ->
           let b = ballot_rt t serial in
           b.status <- status;
           b.endorsed <- endorsed;
           b.ucert <- ucert;
           b.part <- part;
           b.pos <- pos;
           b.sent_vote_p <- sent_vote_p;
           b.shares <- shares)
        entries;
      (* not persisted: recomputed as "decided voted but no UCERT yet" *)
      if t.vsc.consensus_started then
        Array.iteri
          (fun slot v ->
             if v = Some true then
               match Hashtbl.find_opt t.ballots slot with
               | Some b when b.ucert <> None -> ()
               | Some _ | None -> Hashtbl.replace t.vsc.awaiting_recovery slot ())
          t.vsc.decisions;
      t)

let attach_wal t =
  match t.env.durable with
  | None -> ()
  | Some device ->
    t.wal <- Some (Store.create ~compact_every:32 ~snapshot:(fun () -> snapshot t) device)

let create env =
  let t = create_bare env in
  attach_wal t;
  t

let recover env =
  match env.durable with
  | None -> create env
  | Some device ->
    let recovered = Store.read device in
    let t =
      match recovered.Store.state with
      | Some blob ->
        (match restore env blob with Some t -> t | None -> create_bare env)
      | None -> create_bare env
    in
    t.recovering <- true;
    List.iter
      (fun payload ->
         match decode_rec t payload with
         | Some rc -> apply_rec t rc
         | None -> ()   (* framed but undecodable: ignore, never crash *))
      recovered.Store.records;
    t.recovering <- false;
    attach_wal t;
    (* Re-issue duties whose sends the crash may have swallowed; every
       receiver dedupes. A node that had started consensus does not
       rejoin the instance — the remaining quorum carries the round. *)
    if t.vsc.submitted then send_submission t
    else if t.vsc.consensus_started then check_recovery_complete t
    else if t.phase = Vsc then begin
      let entries = known_entries t in
      multicast t (Messages.Announce_batch { sender = t.env.me; entries });
      maybe_start_consensus t
    end;
    t

let phase t = t.phase
let votes_accepted t = t.votes_accepted
let receipts_issued t = t.receipts_issued
let ucert_conflicts t = t.ucert_conflicts
let decisions t = Array.copy t.vsc.decisions
