(** The Election Authority (Section III-D): the setup-only component.
    [setup] generates every party's initialization data — voter
    ballots, VC validation data and receipt/msk shares, BB commitments
    with encrypted vote codes and ZK first moves, trustee opening
    shares and ZK prover-state shares — after which the EA is
    destroyed (drop the [setup] value; the malicious-EA tests
    deliberately keep and corrupt it instead). *)

module Elgamal = Dd_commit.Elgamal
module Elgamal_vss = Dd_vss.Elgamal_vss
module Shamir_bytes = Dd_vss.Shamir_bytes
module Ballot_proof = Dd_zkp.Ballot_proof

(** One BB entry (a ballot-part position, in permuted order): the
    AES-128-CBC$-encrypted vote code, the m option-encoding commitment
    coordinates, their VSS aux commitments, and the ZK first move. *)
type bb_part_entry = {
  enc_code : string * string;  (** (iv, ciphertext) under msk *)
  commitment : Elgamal.t array;
  vss_aux : Elgamal_vss.aux array;
  zk_first : Ballot_proof.first_move;
}

type bb_ballot = {
  bb_serial : int;
  bb_parts : bb_part_entry array array;  (** part (A=0, B=1) -> position *)
}

type bb_init = {
  hmsk : string;       (** SHA256(msk || salt): commits the BB to the key *)
  salt_msk : string;
  bb_ballots : bb_ballot array;
}

type vc_node_init = {
  vc_id : int;
  vc_msk_share : Shamir_bytes.share;  (* lint: secret *)
  vc_lines : Types.vc_line array array array;  (** serial -> part -> position *)
}

type trustee_part_data = {
  t_shares : Elgamal_vss.share array array;  (* lint: secret *) (** position -> coordinate *)
  t_zk_state_share : Shamir_bytes.share;  (* lint: secret *)
  t_zk_state_tag : Auth.tag;
}

type trustee_init = {
  t_id : int;
  t_ballots : trustee_part_data array array;  (** serial -> part *)
}

type setup = {
  cfg : Types.config;
  seed : string;  (* lint: secret *)
  gctx : Dd_group.Group_ctx.t;
  ballots : Types.ballot array;      (** distributed to voters *)
  vc_keys : Auth.keys array;         (** clique of nv+1; index nv is the EA *)
  trustee_keys : Auth.keys array;    (** clique of nt+1; index nt is the EA *)
  vc_init : vc_node_init array;
  bb_init : bb_init;
  trustee_init : trustee_init array;
}

val ea_vc_index : Types.config -> int
val ea_trustee_index : Types.config -> int

(** The EA-authenticated body binding a trustee's ZK-state share. *)
val zk_state_body :
  election_id:string -> serial:int -> part:Types.part_id -> trustee:int ->
  Shamir_bytes.share -> string

val inverse_perm : int array -> int array

(** The O(1)-in-[n_voters] output of {!setup_chunks}: keys, msk
    commitments and shares. The O(n) material streams through the
    [emit] callback. *)
type static = {
  st_cfg : Types.config;
  st_gctx : Dd_group.Group_ctx.t;
  st_vc_keys : Auth.keys array;
  st_trustee_keys : Auth.keys array;
  st_hmsk : string;
  st_salt_msk : string;
  st_msk_shares : Shamir_bytes.share array;  (* lint: secret *)
  st_n_chunks : int;
  st_chunk_size : int;
}

(** One contiguous serial range of every party's init data — the unit
    of streaming emission and durable checkpointing. Covers serials
    [ck_first, ck_first + Array.length ck_ballots). *)
type chunk = {
  ck_index : int;
  ck_first : int;
  ck_ballots : Types.ballot array;  (* lint: secret *)
  ck_bb : bb_ballot array;
  ck_vc : Types.vc_line array array array array;
      (** node -> serial-in-chunk -> part -> position *)
  ck_trustee : trustee_part_data array array array;  (* lint: secret *)
      (** trustee -> serial-in-chunk -> part *)
}

(** Chunk size used when the caller does not pick one. *)
val default_setup_chunk : int

(** Streaming full-cryptography setup: generates the election in
    ascending chunks of [chunk_size] serials, calling [emit] once per
    chunk, with only one chunk of material resident at a time (the
    caller decides what to retain — the segment writers stream it to
    disk). Deterministic in [seed] and *chunking-invariant*: the parent
    DRBG is consumed only by per-(serial, part) forks in ascending
    serial order, so every chunk size (and every [?pool] size) yields
    bit-identical material. [from_chunk] resumes a crashed run: earlier
    chunks are skipped (their forks are drawn and discarded to keep the
    transcript aligned) and emission starts at that chunk.
    Raises [Invalid_argument] on an invalid configuration. *)
val setup_chunks :
  ?scheme:Auth.scheme -> ?pool:Dd_parallel.Pool.t -> ?chunk_size:int ->
  ?from_chunk:int -> Types.config -> seed:string -> emit:(chunk -> unit) ->
  static

(** Full-cryptography setup; deterministic in [seed]. Cost grows with
    [n_voters * m_options^2] — intended for tests, examples, and
    post-election benchmarks; large-scale vote-collection runs use
    {!Ballot_store.virtual_prf} or the streaming {!setup_chunks}
    instead. Per-ballot generation shards across [?pool] (default: the
    [DDEMOS_DOMAINS] pool); the output is a pure function of [seed],
    identical for every pool and chunk size, because each (serial,
    part) draws from its own serially pre-forked DRBG.
    Raises [Invalid_argument] on an invalid configuration. *)
val setup :
  ?scheme:Auth.scheme -> ?pool:Dd_parallel.Pool.t -> ?chunk_size:int ->
  Types.config -> seed:string -> setup
