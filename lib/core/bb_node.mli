(** Bulletin Board node (Section III-G): an isolated public repository.
    BB nodes never contact each other; readers take the majority
    ({!Bb_reader}). Writes are verified: a final vote set publishes at
    [fv + 1] identical VC submissions, the master key reconstructs from
    [Nv - fv] shares and must match the committed [Hmsk], unused-part
    openings reconstruct and verify from [ht] trustee shares, ZK final
    moves publish at [ft + 1] identical trustee posts, and the tally
    publishes when [ht] verifiable shares open Esum. *)

module Elgamal = Dd_commit.Elgamal
module Elgamal_vss = Dd_vss.Elgamal_vss
module Ballot_proof = Dd_zkp.Ballot_proof

type published = {
  mutable final_set : (int * string) list option;
  mutable msk : string option;
  mutable opened_codes : (int * Types.part_id * int, string) Hashtbl.t option;
  unused_openings : (int * Types.part_id, Elgamal.opening array array) Hashtbl.t;
  zk_finals : (int * Types.part_id, Ballot_proof.final_move array) Hashtbl.t;
  mutable encrypted_tally : Elgamal.t array option;
  mutable tally : Types.tally option;
}

type t

(** With [?durable], every accepted write is appended to an input
    journal on the device before its effects become observable — the
    board is event-sourced, so {!recover} rebuilds it by replay.

    With [?board], the ballot table is served through the given
    {!Board} (e.g. a sealed on-disk segment) instead of
    [init.bb_ballots]; [init] may then carry an empty ballot array, and
    only its [hmsk]/[salt_msk] are used. *)
val create :
  ?durable:Dd_store.Device.t -> ?board:Board.t ->
  cfg:Types.config -> gctx:Dd_group.Group_ctx.t -> init:Ea.bb_init -> me:int ->
  unit -> t

(** Cold restart from the device's journal: replays the accepted writes
    through the handlers (with no subscribers attached), then resumes
    journaling. Equivalent to {!create} without a device. *)
val recover :
  ?durable:Dd_store.Device.t -> ?board:Board.t ->
  cfg:Types.config -> gctx:Dd_group.Group_ctx.t -> init:Ea.bb_init -> me:int ->
  unit -> t

(** Canonical encoding of the published state (sorted, deterministic),
    for recovery-equivalence checks. *)
val observable : t -> string

(** The (replicated) initialization data this node serves. On a
    segmented node the ballot array in here may be empty — use
    {!board} for the ballot table. *)
val init : t -> Ea.bb_init

(** The ballot table this node serves from (see {!Board}). *)
val board : t -> Board.t

(** Everything this node currently publishes. *)
val published : t -> published

(** Observability hooks for harnesses. *)
val subscribe_final_set : t -> (t -> unit) -> unit
val subscribe_tally : t -> (t -> unit) -> unit

(** Locate a cast code's (part, position) once codes are opened. *)
val locate_code : t -> serial:int -> code:string -> (Types.part_id * int) option

(** Write paths. *)
val on_vote_set_submit :
  t -> sender:int -> set:(int * string) list -> msk_share:Dd_vss.Shamir_bytes.share -> unit
val on_trustee_post : t -> trustee:int -> Trustee_payload.t -> unit
val handle : t -> Messages.bb_msg -> unit
