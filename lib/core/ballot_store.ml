(* A VC node's view of the election data: salted vote-code hashes and
   receipt shares per ballot line, plus this node's msk share.

   Three backings:
   - [materialized]: real EA initialization data (full-crypto runs);
   - [segmented]: a sealed on-disk ["vc-<i>"] segment served through a
     bounded chunk cache — real long-running deployments where the
     line table must not live in RAM;
   - [virtual_prf]: data derived on demand from the setup seed, with a
     bounded cache — the stand-in for the prototype's PostgreSQL table
     that lets the Fig. 5a experiments cover electorates of hundreds of
     millions of ballots. The simulator charges the disk-cost model
     separately; this module only provides the values. *)

module Shamir_bytes = Dd_vss.Shamir_bytes

type t =
  | Materialized of Ea.vc_node_init
  | Segmented of {
      sg_cfg : Types.config;
      sg_gctx : Dd_group.Group_ctx.t;
      sg_msk_share : Shamir_bytes.share;
      sg_cache : Dd_segment.Segment.Cache.t;
    }
  | Virtual of {
      seed : string;
      cfg : Types.config;
      node : int;
      msk_share : Shamir_bytes.share;
      cache : (int, Types.vc_line array array) Hashtbl.t;
      mutable cache_cap : int;
    }

let materialized init = Materialized init

let segmented ?(cache_slots = 4) ~gctx ~cfg ~msk_share device manifest =
  Segmented
    { sg_cfg = cfg; sg_gctx = gctx; sg_msk_share = msk_share;
      sg_cache = Dd_segment.Segment.Cache.create ~slots:cache_slots device manifest }

let virtual_prf ~seed ~cfg ~node =
  let msk_shares =
    Ballot_gen.msk_shares ~seed ~threshold:(cfg.Types.nv - cfg.Types.fv) ~shares:cfg.Types.nv
  in
  Virtual
    { seed; cfg; node; msk_share = msk_shares.(node);
      cache = Hashtbl.create 4096; cache_cap = 100_000 }

let n_voters = function
  | Materialized init -> Array.length init.Ea.vc_lines
  | Segmented s -> s.sg_cfg.Types.n_voters
  | Virtual v -> v.cfg.Types.n_voters

let lines t ~serial ~part =
  match t with
  | Materialized init ->
    if serial < 0 || serial >= Array.length init.Ea.vc_lines then [||]
    else init.Ea.vc_lines.(serial).(Types.part_index part)
  | Segmented s ->
    (match Dd_segment.Segment.Cache.record s.sg_cache serial with
     | None -> [||]
     | Some payload ->
       (match Election_store.decode_vc_record s.sg_gctx payload with
        | Some parts when Types.part_index part < Array.length parts ->
          parts.(Types.part_index part)
        | _ -> [||]))
  | Virtual v ->
    if serial < 0 || serial >= v.cfg.Types.n_voters then [||]
    else begin
      let both =
        match Hashtbl.find_opt v.cache serial with
        | Some b -> b
        | None ->
          let derive p = Ballot_gen.vc_lines ~seed:v.seed ~cfg:v.cfg ~serial ~part:p ~node:v.node in
          let b = [| derive Types.A; derive Types.B |] in
          if Hashtbl.length v.cache >= v.cache_cap then Hashtbl.reset v.cache;
          Hashtbl.replace v.cache serial b;
          b
      in
      both.(Types.part_index part)
    end

let msk_share = function
  | Materialized init -> init.Ea.vc_msk_share
  | Segmented s -> s.sg_msk_share
  | Virtual v -> v.msk_share

(* Locate a vote code in a ballot: scan both parts' salted hashes, as
   Algorithm 1's VerifyVoteCode does. Returns (part, position, line). *)
let verify_vote_code t ~serial ~vote_code =
  let check part =
    let ls = lines t ~serial ~part in
    let found = ref None in
    Array.iteri
      (fun pos line ->
         if !found = None
         && Dd_crypto.Ct.equal line.Types.code_hash
              (Ballot_gen.code_hash ~code:vote_code ~salt:line.Types.salt)
         then found := Some (part, pos, line))
      ls;
    !found
  in
  match check Types.A with
  | Some r -> Some r
  | None -> check Types.B
