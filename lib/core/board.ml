(* The BB ballot table behind one interface (see board.mli): an array
   in RAM or a sealed segment on disk, with one Merkle root computed
   identically on both paths so boards can be compared across
   backings. *)

module Device = Dd_store.Device
module Segment = Dd_segment.Segment
module Merkle = Dd_crypto.Merkle
module Group_ctx = Dd_group.Group_ctx

type t =
  | Materialized of {
      gctx : Group_ctx.t;
      ballots : Ea.bb_ballot array;
      m_chunk_size : int;
      mutable m_root : string option;  (* derived lazily, then cached *)
    }
  | Segmented of {
      gctx : Group_ctx.t;
      device : Device.t;
      manifest : Segment.manifest;
      cache : Segment.Cache.t;
    }

let materialized ?(chunk_size = Segment.default_chunk_size) gctx ballots =
  (* lint: allow exception-hygiene — constructor precondition on local config, not peer input *)
  if chunk_size <= 0 then invalid_arg "Board.materialized: chunk_size";
  Materialized { gctx; ballots; m_chunk_size = chunk_size; m_root = None }

let segmented ?(cache_slots = 4) gctx device manifest =
  Segmented
    { gctx; device; manifest;
      cache = Segment.Cache.create ~slots:cache_slots device manifest }

let n_ballots = function
  | Materialized m -> Array.length m.ballots
  | Segmented s -> s.manifest.Segment.total

let chunk_size = function
  | Materialized m -> m.m_chunk_size
  | Segmented s -> s.manifest.Segment.chunk_size

let n_chunks = function
  | Materialized m ->
    let n = Array.length m.ballots in
    if n = 0 then 0 else (n + m.m_chunk_size - 1) / m.m_chunk_size
  | Segmented s -> Segment.n_chunks s.manifest

let ballot t serial =
  match t with
  | Materialized m ->
    if serial < 0 || serial >= Array.length m.ballots then None
    else Some m.ballots.(serial)
  | Segmented s ->
    (match Segment.Cache.record s.cache serial with
     | None -> None
     | Some payload -> Election_store.decode_bb_ballot s.gctx payload)

let entries t ~serial ~part =
  match ballot t serial with
  | None -> None
  | Some b ->
    let p = Types.part_index part in
    if p < 0 || p >= Array.length b.Ea.bb_parts then None
    else Some b.Ea.bb_parts.(p)

let iter t f =
  match t with
  | Materialized m -> Array.iter f m.ballots; true
  | Segmented s ->
    let ok = ref true in
    let nc = Segment.n_chunks s.manifest in
    (try
       for c = 0 to nc - 1 do
         match Segment.Cache.chunk s.cache c with
         | None -> ok := false; raise Exit
         | Some payloads ->
           Array.iter
             (fun payload ->
                match Election_store.decode_bb_ballot s.gctx payload with
                | Some b -> f b
                | None -> ok := false; raise Exit)
             payloads
       done
     with Exit -> ());
    !ok

(* The materialized root re-derives exactly what a segment writer would
   have committed to: encode each ballot, leaf-hash per-chunk, then
   leaf-hash the chunk roots into the top tree. *)
let materialized_chunk_roots gctx ballots ~chunk_size =
  let n = Array.length ballots in
  let nc = if n = 0 then 0 else (n + chunk_size - 1) / chunk_size in
  Array.init nc (fun c ->
      let first = c * chunk_size in
      let count = min chunk_size (n - first) in
      let b = Merkle.create () in
      for i = first to first + count - 1 do
        Merkle.add b (Election_store.encode_bb_ballot gctx ballots.(i))
      done;
      Merkle.root b)

let root t =
  match t with
  | Segmented s -> s.manifest.Segment.root
  | Materialized m ->
    (match m.m_root with
     | Some r -> r
     | None ->
       let roots =
         materialized_chunk_roots m.gctx m.ballots ~chunk_size:m.m_chunk_size
       in
       let r = Segment.root_of_chunk_roots roots in
       m.m_root <- Some r;
       r)

let slice t c =
  if c < 0 || c >= n_chunks t then None
  else
    match t with
    | Materialized m ->
      let n = Array.length m.ballots in
      let first = c * m.m_chunk_size in
      let count = min m.m_chunk_size (n - first) in
      Some (first, Array.sub m.ballots first count)
    | Segmented s ->
      (match Segment.Cache.chunk s.cache c with
       | None -> None
       | Some payloads ->
         let out = Array.make (Array.length payloads) None in
         Array.iteri
           (fun i p -> out.(i) <- Election_store.decode_bb_ballot s.gctx p)
           payloads;
         if Array.exists Option.is_none out then None
         else
           Some
             (s.manifest.Segment.chunk_first.(c),
              (* lint: allow exception-hygiene — all-Some guarded three lines up *)
              Array.map Option.get out))

let slice_proof t c =
  if c < 0 || c >= n_chunks t then None
  else
    match t with
    | Materialized m ->
      let roots =
        materialized_chunk_roots m.gctx m.ballots ~chunk_size:m.m_chunk_size
      in
      Some
        (roots.(c),
         Merkle.proof_of_hashes
           (Array.to_list (Array.map Merkle.leaf_hash roots)) c)
    | Segmented s ->
      Some (s.manifest.Segment.chunk_root.(c), Segment.slice_proof s.manifest c)

let cache_stats = function
  | Materialized _ -> None
  | Segmented s -> Some (Segment.Cache.stats s.cache)
