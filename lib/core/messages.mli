(** Protocol messages of the VC and BB subsystems, with UCERT
    verification and the byte-level wire format (the role protobuf
    played in the paper's prototype). *)

(** A uniqueness certificate: [Nv - fv] endorsements binding one
    (serial, vote code). Once formed, no other code can ever be
    certified for the same ballot. *)
type ucert = {
  u_serial : int;
  u_code : string;
  endorsements : (int * Auth.tag) list;
}

(** The authenticated body of an ENDORSEMENT. *)
val endorsement_body : election_id:string -> serial:int -> code:string -> string

(** Check a UCERT: at least [quorum] distinct signers, every tag valid. *)
val verify_ucert : Auth.keys -> election_id:string -> quorum:int -> ucert -> bool

(** {!verify_ucert} with the per-tag check routed through [verify]
    instead of the built-in batch verification — the serving runtime
    passes its amortizing/caching verifier here (see [Vc_node.env]'s
    [verify_tag]). Without [?verify] this is exactly {!verify_ucert}. *)
val verify_ucert_with :
  ?verify:(signer:int -> string -> Auth.tag -> bool) ->
  Auth.keys -> election_id:string -> quorum:int -> ucert -> bool

(** The EA-authenticated body binding a receipt share to its line and
    holder. *)
val share_body :
  election_id:string -> serial:int -> part:Types.part_id -> pos:int -> node:int ->
  share:Dd_vss.Shamir_bytes.share -> string

type vc_msg =
  | Vote of { serial : int; vote_code : string; client : int; req : int }
  | Endorse of { serial : int; vote_code : string; responder : int }
  | Endorsement of { serial : int; vote_code : string; signer : int; tag : Auth.tag }
  | Vote_p of {
      serial : int;
      vote_code : string;
      sender : int;
      part : Types.part_id;
      pos : int;
      share : Dd_vss.Shamir_bytes.share;
      share_tag : Auth.tag option;
      ucert : ucert;
    }
  | Announce_batch of { sender : int; entries : (int * string * ucert) list }
  | Consensus of { sender : int; rbc : Dd_consensus.Rbc.msg }
  | Recover_request of { sender : int; serials : int list }
  | Recover_response of { sender : int; entries : (int * string * ucert) list }

type bb_msg =
  | Vote_set_submit of {
      sender : int;
      set : (int * string) list;
      msk_share : Dd_vss.Shamir_bytes.share;
    }
  | Trustee_post of { trustee : int; payload : Trustee_payload.t }

(** Wire-size estimates for the network model. *)
val tag_size : Auth.tag -> int
val ucert_size : ucert -> int
val vc_msg_size : vc_msg -> int
val bb_msg_size : bb_msg -> int

(** Byte-level encoding of every VC message; the decoder is total
    (malformed frames yield [None], never an exception). *)
val encode_vc_msg : Dd_group.Group_ctx.t -> vc_msg -> string
val decode_vc_msg : Dd_group.Group_ctx.t -> string -> vc_msg option

(** Byte-level encoding of the BB write paths (total decoder), for the
    BB nodes' durable input journal. *)
val encode_bb_msg : bb_msg -> string
val decode_bb_msg : string -> bb_msg option

(** Building blocks of the wire format, exported for the node layer's
    durable-state codecs (Vc_node snapshots, trustee journals). The
    [get_*] readers raise {!Dd_codec.Wire.Malformed} on bad input — use
    them under [Dd_codec.Wire.decode]. *)
val put_tag : Dd_group.Group_ctx.t -> Dd_codec.Wire.writer -> Auth.tag -> unit
val get_tag : Dd_group.Group_ctx.t -> Dd_codec.Wire.reader -> Auth.tag
val put_share : Dd_codec.Wire.writer -> Dd_vss.Shamir_bytes.share -> unit
val get_share : Dd_codec.Wire.reader -> Dd_vss.Shamir_bytes.share
val put_ucert : Dd_group.Group_ctx.t -> Dd_codec.Wire.writer -> ucert -> unit
val get_ucert : Dd_group.Group_ctx.t -> Dd_codec.Wire.reader -> ucert
val put_part : Dd_codec.Wire.writer -> Types.part_id -> unit
val get_part : Dd_codec.Wire.reader -> Types.part_id
val put_vss_share : Dd_codec.Wire.writer -> Dd_vss.Elgamal_vss.share -> unit
val get_vss_share : Dd_codec.Wire.reader -> Dd_vss.Elgamal_vss.share
val put_entry :
  Dd_group.Group_ctx.t -> Dd_codec.Wire.writer -> int * string * ucert -> unit
val get_entry : Dd_group.Group_ctx.t -> Dd_codec.Wire.reader -> int * string * ucert
