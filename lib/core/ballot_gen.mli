(** Deterministic generation of the plain ballot material (vote codes,
    receipts, salts, per-part shuffles, GF(256) receipt shares, msk)
    from a master seed. Every party derives identical values, enabling
    the virtual ballot store and exact replay. *)

type part_material = {
  perm : int array;         (** printed option [j] sits at position [perm.(j)] *)
  codes : string array;     (** by permuted position *)
  receipts : string array;
  salts : string array;
  hashes : string array;    (** SHA256(code || salt) *)
}

(** The salted hash a VC node validates a vote code against. *)
val code_hash : code:string -> salt:string -> string

val gen_part : seed:string -> serial:int -> part:Types.part_id -> m:int -> part_material

(** The ballot as printed for the voter (lines in option order). *)
val voter_ballot : seed:string -> serial:int -> m:int -> Types.ballot

(** All Nv receipt shares of one line (node [i] holds index [i]). *)
val receipt_shares :
  seed:string -> serial:int -> part:Types.part_id -> pos:int -> receipt:string ->
  threshold:int -> shares:int -> Dd_vss.Shamir_bytes.share array

(** Master vote-code encryption key material: the key, its salt, the
    public commitment [Hmsk = SHA256(msk || salt)], and the VC nodes'
    shares. *)
(* lint: secret *)
val msk : seed:string -> string
val msk_salt : seed:string -> string
val msk_commitment : seed:string -> string
(* lint: secret *)
val msk_shares : seed:string -> threshold:int -> shares:int -> Dd_vss.Shamir_bytes.share array

(** One VC node's validation lines for a ballot part (derived; no EA
    share tags — the full-crypto path gets those from {!Ea.setup}). *)
val vc_lines :
  seed:string -> cfg:Types.config -> serial:int -> part:Types.part_id -> node:int ->
  Types.vc_line array
