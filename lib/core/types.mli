(** Shared vocabulary of the D-DEMOS system: ballots, parts, election
    configuration, fault thresholds, and sizes (Section III-D). *)

(** The two functionally equivalent halves of a ballot. The unused one
    becomes the audit material. *)
type part_id = A | B

val part_index : part_id -> int

(** [None] outside {0, 1}. *)
val part_of_index : int -> part_id option

val part_label : part_id -> string
val other_part : part_id -> part_id

(** Election-wide parameters, with the paper's fault thresholds:
    [nv >= 3 fv + 1], [nb >= 2 fb + 1], and [ht]-of-[nt] trustees. *)
type config = {
  election_id : string;
  n_voters : int;
  m_options : int;
  nv : int;
  fv : int;
  nb : int;
  fb : int;
  nt : int;
  ht : int;
}

val validate_config : config -> (unit, string) result

(** 10 voters, 3 options, Nv=4/fv=1, Nb=3/fb=1, Nt=3/ht=2. *)
val default_config : config

(** Paper sizes: 160-bit vote codes, 64-bit receipts and salts, 128-bit
    master key. *)
val vote_code_bytes : int
val receipt_bytes : int
val salt_bytes : int
val msk_bytes : int

(** One printed ballot line: the vote code the voter submits and the
    receipt she expects back. *)
type ballot_line = {
  vote_code : string;
  receipt : string;
}

type ballot_part = {
  lines : ballot_line array;  (** indexed by option *)
}

type ballot = {
  serial : int;
  part_a : ballot_part;
  part_b : ballot_part;
}

val ballot_part : ballot -> part_id -> ballot_part

(** A VC node's per-line validation data (in permuted order). *)
type vc_line = {
  code_hash : string;   (** SHA256(vote_code || salt) *)
  salt : string;
  receipt_share : Dd_vss.Shamir_bytes.share;
  share_tag : Auth.tag option;  (** EA authenticator; [None] in modeled runs *)
}

(** Ballot status at a VC node (Algorithm 1). *)
type vc_status =
  | Not_voted
  | Pending of string
  | Voted of string * string  (** vote code, reconstructed receipt *)

type vote_outcome =
  | Receipt of string
  | Rejected of string

(** Per-option counts. *)
type tally = int array

val pp_tally : Format.formatter -> tally -> unit
