(* Trustee (Section III-H). After the election each trustee reads the
   agreed vote set and opened codes from the BB majority, then:

   - posts its opening shares for every commitment in unused ballot
     parts (and both parts of unvoted ballots) — the audit material;
   - for used parts, jointly finishes the ballot-correctness ZK proofs:
     the EA shared each part's serialized prover state among the
     trustees with an (ht, Nt) sharing, so any ht trustees reconstruct
     it, compute the final move under the voter-coin challenge, and
     post it (the BB publishes a final move once ft+1 trustees post
     identical bytes);
   - homomorphically sums its opening shares over the tally set Etally
     and posts a single share of the opening of the total Esum. *)

module Shamir_bytes = Dd_vss.Shamir_bytes
module Elgamal_vss = Dd_vss.Elgamal_vss
module Ballot_proof = Dd_zkp.Ballot_proof
module Challenge = Dd_zkp.Challenge
module Group_ctx = Dd_group.Group_ctx
module Nat = Dd_bignum.Nat
module Store = Dd_store.Store
module Wire = Dd_codec.Wire

type exchange = {
  ex_from : int;
  (* (serial, part, state share, EA tag over it) *)
  ex_entries : (int * Types.part_id * Shamir_bytes.share * Auth.tag) list;
}

type env = {
  me : int;
  cfg : Types.config;
  gctx : Group_ctx.t;
  init : Ea.trustee_init;
  keys : Auth.keys;                       (* trustee clique; index nt is the EA *)
  send_trustee : dst:int -> exchange -> unit;
  post_bb : Trustee_payload.t -> unit;    (* broadcast a post to every BB node *)
  (* input journal device; the trustee is event-sourced over its two
     inputs (election data, peer exchanges) *)
  durable : Dd_store.Device.t option;
}

type t = {
  env : env;
  (* (serial, part) -> collected state shares *)
  state_shares : (int * Types.part_id, Shamir_bytes.share list ref) Hashtbl.t;
  mutable used_parts : (int * Types.part_id) list;  (* serial, voted part *)
  mutable master_challenge : Nat.t option;
  mutable zk_posted : (int * Types.part_id, unit) Hashtbl.t;
  mutable started : bool;
  mutable journal : Store.t option;
}

let create_bare env =
  { env;
    state_shares = Hashtbl.create 64;
    used_parts = [];
    master_challenge = None;
    zk_posted = Hashtbl.create 64;
    started = false;
    journal = None }

let attach_journal t =
  match t.env.durable with
  | None -> ()
  | Some device ->
    (* pure input journal: one election-data record plus at most nt - 1
       exchanges — no compaction needed *)
    t.journal <- Some (Store.create ~snapshot:(fun () -> "") device)

let create env =
  let t = create_bare env in
  attach_journal t;
  t

(* --- durable input journal --------------------------------------------- *)

type journal_input =
  | J_data of (int * (Types.part_id * int)) list
  | J_exchange of exchange

let encode_input t inp =
  let gctx = t.env.keys.Auth.gctx in
  let w = Wire.writer () in
  (match inp with
   | J_data voted ->
     Wire.put_varint w 0;
     Wire.put_list w
       (fun w (serial, (part, pos)) ->
          Wire.put_varint w serial;
          Messages.put_part w part;
          Wire.put_varint w pos)
       voted
   | J_exchange ex ->
     Wire.put_varint w 1;
     Wire.put_varint w ex.ex_from;
     Wire.put_list w
       (fun w (serial, part, share, tag) ->
          Wire.put_varint w serial;
          Messages.put_part w part;
          Messages.put_share w share;
          Messages.put_tag gctx w tag)
       ex.ex_entries);
  Wire.contents w

let decode_input t payload =
  let gctx = t.env.keys.Auth.gctx in
  Wire.decode payload (fun r ->
      match Wire.get_varint r with
      | 0 ->
        J_data
          (Wire.get_list r (fun r ->
               let serial = Wire.get_varint r in
               let part = Messages.get_part r in
               let pos = Wire.get_varint r in
               (serial, (part, pos))))
      | 1 ->
        let ex_from = Wire.get_varint r in
        let ex_entries =
          Wire.get_list r (fun r ->
              let serial = Wire.get_varint r in
              let part = Messages.get_part r in
              let share = Messages.get_share r in
              let tag = Messages.get_tag gctx r in
              (serial, part, share, tag))
        in
        J_exchange { ex_from; ex_entries }
      | _ -> raise (Wire.Malformed "trustee journal input"))

let journal_input t inp =
  match t.journal with
  | Some store -> Store.log store (encode_input t inp)
  | None -> ()

(* Parse the per-part state blob: length-prefixed encoded states. *)
let parse_states blob =
  let rec go off acc =
    if off >= String.length blob then Some (List.rev acc)
    else if off + 8 > String.length blob then None
    else begin
      match int_of_string_opt (String.sub blob off 8) with
      | None -> None
      | Some len ->
        if off + 8 + len > String.length blob then None
        else begin
          match Ballot_proof.decode_state (String.sub blob (off + 8) len) with
          | None -> None
          | Some st -> go (off + 8 + len) (st :: acc)
        end
    end
  in
  match go 0 [] with
  | Some l -> Some (Array.of_list l)
  | None -> None

let part_data t ~serial ~part =
  t.env.init.Ea.t_ballots.(serial).(Types.part_index part)

(* Finish the ZK proof of one used part once ht state shares are in. *)
let try_finalize_zk t ~serial ~part =
  let key = (serial, part) in
  if not (Hashtbl.mem t.zk_posted key) then begin
    match Hashtbl.find_opt t.state_shares key, t.master_challenge with
    | Some shares, Some master when List.length !shares >= t.env.cfg.Types.ht ->
      let selected = List.filteri (fun i _ -> i < t.env.cfg.Types.ht) !shares in
      let blob = Shamir_bytes.reconstruct ~threshold:t.env.cfg.Types.ht selected in
      (match parse_states blob with
       | None -> ()  (* corrupt share slipped in; wait for more *)
       | Some states ->
         let challenge = Challenge.for_proof t.env.gctx ~master_challenge:master ~serial
             ~part:(match part with Types.A -> `A | Types.B -> `B) in
         let finals = Array.map (fun st -> Ballot_proof.finalize t.env.gctx st ~challenge) states in
         Hashtbl.replace t.zk_posted key ();
         t.env.post_bb
           (Trustee_payload.Zk_final
              [ { Trustee_payload.z_serial = serial; Trustee_payload.z_part = part;
                  Trustee_payload.z_finals = finals } ]))
    | _ -> ()
  end

let add_state_share t ~serial ~part share =
  let key = (serial, part) in
  let shares =
    match Hashtbl.find_opt t.state_shares key with
    | Some l -> l
    | None -> let l = ref [] in Hashtbl.replace t.state_shares key l; l
  in
  if not (List.exists (fun s -> s.Shamir_bytes.x = share.Shamir_bytes.x) !shares) then begin
    shares := share :: !shares;
    try_finalize_zk t ~serial ~part
  end

let on_exchange t (ex : exchange) =
  journal_input t (J_exchange ex);
  List.iter
    (fun (serial, part, share, tag) ->
       let body = Ea.zk_state_body ~election_id:t.env.cfg.Types.election_id ~serial ~part
           ~trustee:ex.ex_from share
       in
       (* shares are EA-authenticated, so a Byzantine trustee cannot
          inject a corrupt share *)
       if Auth.verify t.env.keys ~signer:t.env.cfg.Types.nt body tag then
         add_state_share t ~serial ~part share)
    ex.ex_entries

(* Entry point: the harness calls this with the majority-read BB data.
   [voted] maps each serial in the final set to its located (part, pos);
   serials absent from the map are unvoted. *)
let on_election_data t ~(voted : (int * (Types.part_id * int)) list) =
  if not t.started then begin
    journal_input t (J_data voted);
    t.started <- true;
    let cfg = t.env.cfg in
    let n = cfg.Types.n_voters and m = cfg.Types.m_options in
    (* voter coins, ordered by serial: A = false, B = true *)
    let coins =
      List.sort compare voted
      |> List.map (fun (_, (part, _)) -> part = Types.B)
    in
    t.master_challenge <-
      Some (Challenge.master t.env.gctx ~election_id:cfg.Types.election_id ~coins);
    t.used_parts <- List.map (fun (serial, (part, _)) -> (serial, part)) voted;
    (* 1. openings of unused parts / both parts of unvoted ballots *)
    let opening_entries = ref [] in
    for serial = 0 to n - 1 do
      let parts_to_open =
        match List.assoc_opt serial voted with
        | Some (part, _) -> [ Types.other_part part ]
        | None -> [ Types.A; Types.B ]
      in
      List.iter
        (fun part ->
           let data = part_data t ~serial ~part in
           opening_entries :=
             { Trustee_payload.o_serial = serial; Trustee_payload.o_part = part;
               Trustee_payload.o_shares = data.Ea.t_shares }
             :: !opening_entries)
        parts_to_open
    done;
    t.env.post_bb (Trustee_payload.Openings !opening_entries);
    (* 2. exchange ZK prover-state shares for the used parts *)
    let ex_entries =
      List.map
        (fun (serial, part) ->
           let data = part_data t ~serial ~part in
           (serial, part, data.Ea.t_zk_state_share, data.Ea.t_zk_state_tag))
        t.used_parts
    in
    (* include our own shares *)
    List.iter
      (fun (serial, part, share, _) -> add_state_share t ~serial ~part share)
      ex_entries;
    for dst = 0 to cfg.Types.nt - 1 do
      if dst <> t.env.me then
        t.env.send_trustee ~dst { ex_from = t.env.me; ex_entries }
    done;
    (* 3. tally share: sum our opening shares over Etally *)
    let x = t.env.me + 1 in
    let tally_shares =
      Array.init m (fun j ->
          let per_ballot =
            List.map
              (fun (serial, (part, pos)) ->
                 let data = part_data t ~serial ~part in
                 data.Ea.t_shares.(pos).(j))
              voted
          in
          Elgamal_vss.sum_shares t.env.gctx ~x per_ballot)
    in
    t.env.post_bb
      (Trustee_payload.Tally_share
         { shares = tally_shares; ballots_counted = List.length voted })
  end

(* Cold restart: replay the journaled inputs through the live handlers.
   Replay re-posts to the BBs and re-sends exchanges — deliberately so,
   since the crash may have swallowed the originals; every receiver
   (BB post dedup, peer share dedup by x) coalesces duplicates. *)
let recover env =
  let t = create_bare env in
  (match env.durable with
   | None -> ()
   | Some device ->
     let recovered = Store.read device in
     List.iter
       (fun payload ->
          match decode_input t payload with
          | Some (J_data voted) -> on_election_data t ~voted
          | Some (J_exchange ex) -> on_exchange t ex
          | None -> ()   (* framed but undecodable: skip, never crash *))
       recovered.Store.records);
  attach_journal t;
  t

(* Canonical encoding of the trustee's state, for recovery-equivalence
   checks (sorted, deterministic). *)
let observable t =
  let w = Wire.writer () in
  Wire.put_varint w 1;
  Wire.put_bool w t.started;
  Wire.put_option w (fun w n -> Wire.put_bytes w (Nat.to_bytes_be n)) t.master_challenge;
  Wire.put_list w
    (fun w (s, p) ->
       Wire.put_varint w s;
       Wire.put_varint w (Types.part_index p))
    (List.sort compare t.used_parts);
  let shares =
    Hashtbl.fold
      (fun (s, p) l acc ->
         let xs = List.map (fun sh -> sh.Shamir_bytes.x) !l |> List.sort compare in
         ((s, Types.part_index p), xs) :: acc)
      t.state_shares []
    |> List.sort compare
  in
  Wire.put_list w
    (fun w ((s, p), xs) ->
       Wire.put_varint w s;
       Wire.put_varint w p;
       Wire.put_list w Wire.put_varint xs)
    shares;
  let posted =
    Hashtbl.fold (fun (s, p) () acc -> (s, Types.part_index p) :: acc) t.zk_posted []
    |> List.sort compare
  in
  Wire.put_list w
    (fun w (s, p) ->
       Wire.put_varint w s;
       Wire.put_varint w p)
    posted;
  Wire.contents w
