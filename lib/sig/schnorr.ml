(* Schnorr signatures over the shared curve group with SHA-256 as the
   Fiat-Shamir hash. Fills the role of the paper's PKI signatures for
   ENDORSEMENT messages, UCERT certificates, trustee writes to the BB,
   and the EA's signatures on initialization data. *)

module Nat = Dd_bignum.Nat
module Modular = Dd_bignum.Modular
module Group_ctx = Dd_group.Group_ctx
module Curve = Dd_group.Curve

type secret_key = Nat.t
type public_key = Curve.point

type signature = {
  s : Nat.t;
  e : Nat.t;   (* challenge hash; (s, e) encoding makes verification cheap *)
}

let keygen gctx rng =
  let sk = Group_ctx.random_scalar gctx rng in
  (sk, Group_ctx.mul_g gctx sk)

let challenge gctx ~commitment ~pk msg =
  let curve = Group_ctx.curve gctx in
  Curve.hash_to_scalar curve
    [ "schnorr-sig"; Curve.encode curve commitment; Curve.encode curve pk; msg ]

let sign gctx rng ~sk ~pk msg =
  let fn = Group_ctx.scalar_field gctx in
  let k = Group_ctx.random_scalar gctx rng in
  let r = Group_ctx.mul_g gctx k in
  let e = challenge gctx ~commitment:r ~pk msg in
  let s = Modular.sub fn k (Modular.mul fn e sk) in
  { s; e }

(* Verification works on public data only, so it may take the
   variable-time multi-scalar paths (see the timing contract in
   curve.mli). *)
let verify gctx ~pk msg { s; e } =
  (* r' = s*G + e*PK; valid iff H(r', pk, msg) = e *)
  let r' = Group_ctx.mul2_g gctx s e pk in
  Nat.equal e (challenge gctx ~commitment:r' ~pk msg)

(* A comb table for PK turns e*PK into doubling-free comb adds; with
   many signatures under one key (every endorsement a node checks
   carries the same VC signer set) the table amortizes fast. *)
type pk_table = Curve.base_table

let make_pk_table gctx pk = Curve.make_base_table (Group_ctx.curve gctx) pk

let verify_with_table gctx ~pk ~pk_table msg { s; e } =
  let curve = Group_ctx.curve gctx in
  let r' =
    Curve.add curve (Group_ctx.mul_g gctx s)
      (Curve.mul_base_table curve pk_table e)
  in
  Nat.equal e (challenge gctx ~commitment:r' ~pk msg)

let encode gctx { s; e } =
  let len = Curve.byte_len (Group_ctx.curve gctx) in
  Nat.to_bytes_be ~len s ^ Nat.to_bytes_be ~len e

let decode gctx bytes =
  let len = Curve.byte_len (Group_ctx.curve gctx) in
  if String.length bytes <> 2 * len then None
  else
    Some
      { s = Nat.of_bytes_be (String.sub bytes 0 len);
        e = Nat.of_bytes_be (String.sub bytes len len) }

let encode_pk gctx pk = Curve.encode (Group_ctx.curve gctx) pk
let decode_pk gctx s = Curve.decode (Group_ctx.curve gctx) s
