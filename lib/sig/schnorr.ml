(* Schnorr signatures over the shared curve group with SHA-256 as the
   Fiat-Shamir hash. Fills the role of the paper's PKI signatures for
   ENDORSEMENT messages, UCERT certificates, trustee writes to the BB,
   and the EA's signatures on initialization data. *)

module Nat = Dd_bignum.Nat
module Modular = Dd_bignum.Modular
module Group_ctx = Dd_group.Group_ctx
module Curve = Dd_group.Curve
module Batch = Dd_group.Batch

type secret_key = Nat.t
type public_key = Curve.point

(* The signature carries the nonce commitment R rather than the
   challenge hash e: verifiers recompute e = H(R, pk, msg) and check
   the group equation s*G + e*PK = R directly, which is what makes
   signatures *batchable* — n equations fold into one random linear
   combination and a single MSM (with the (s, e) encoding, each R
   would first have to be recovered by its own full mul2). Cost of the
   serial path is unchanged: one double-scalar multiplication plus a
   point equality instead of plus a hash comparison. *)
type signature = {
  s : Nat.t;
  r : Curve.point;
}

let keygen gctx rng =
  let sk = Group_ctx.random_scalar gctx rng in
  (sk, Group_ctx.mul_g gctx sk)

let domain = "schnorr-sig"

let challenge gctx ~commitment ~pk msg =
  let curve = Group_ctx.curve gctx in
  Curve.hash_to_scalar curve
    [ domain; Curve.encode curve commitment; Curve.encode curve pk; msg ]

let sign gctx rng ~sk ~pk msg =
  let fn = Group_ctx.scalar_field gctx in
  let k = Group_ctx.random_scalar gctx rng in
  let r =
    (* store R in canonical affine form: it travels on the wire, and a
       decoded signature must compare structurally equal to the
       original (k is nonzero mod n, so R is never the identity) *)
    let curve = Group_ctx.curve gctx in
    match Curve.to_affine curve (Group_ctx.mul_g gctx k) with
    | Some xy -> Curve.of_affine curve xy
    | None -> Curve.infinity
  in
  let e = challenge gctx ~commitment:r ~pk msg in
  let s = Modular.sub fn k (Modular.mul fn e sk) in
  { s; r }

(* Verification works on public data only, so it may take the
   variable-time multi-scalar paths (see the timing contract in
   curve.mli). *)
let verify gctx ~pk msg { s; r } =
  let e = challenge gctx ~commitment:r ~pk msg in
  Curve.equal (Group_ctx.curve gctx) (Group_ctx.mul2_g gctx s e pk) r

(* A comb table for PK turns e*PK into doubling-free comb adds; with
   many signatures under one key (every endorsement a node checks
   carries the same VC signer set) the table amortizes fast. *)
type pk_table = Curve.base_table

let make_pk_table gctx pk = Curve.make_base_table (Group_ctx.curve gctx) pk

let verify_with_table gctx ~pk ~pk_table msg { s; r } =
  let curve = Group_ctx.curve gctx in
  let e = challenge gctx ~commitment:r ~pk msg in
  Curve.equal curve
    (Curve.add curve (Group_ctx.mul_g gctx s) (Curve.mul_base_table curve pk_table e))
    r

(* A wide precomputed msm table for a verification key: with the same
   signer set checked over and over (every UCERT carries the same VC
   clique), the batch path amortizes per-key tables exactly like
   [verify_with_table] amortizes its comb table on the serial path. *)
let precompute_pk gctx pk = Curve.precompute (Group_ctx.curve gctx) pk

(* Batch verification: fold n equations s_i*G + e_i*PK_i - R_i = O
   with independent random weights into one MSM (soundness 2^-128 per
   batch; see Batch). The challenge hashes need every R_i and PK_i in
   affine form, so one Montgomery-trick normalization replaces the n
   point-encoding inversions the serial path pays — at UCERT batch
   sizes that amortization is worth as much as the MSM itself. [?pre]
   supplies a per-item precomputed table for the public keys (parallel
   to [items]); the keys then skip both the normalization here and
   their table builds inside the MSM. *)
let verify_batch ?pre gctx rng (items : (Curve.point * string * signature) array) =
  let n = Array.length items in
  (match pre with
   | Some p when Array.length p <> n ->
     invalid_arg "Schnorr.verify_batch: pre/items length mismatch"
   | _ -> ());
  if n = 0 then true
  else if n = 1 then (let pk, msg, sg = items.(0) in verify gctx ~pk msg sg)
  else begin
    let curve = Group_ctx.curve gctx in
    let fn = Group_ctx.scalar_field gctx in
    let len = Curve.byte_len curve in
    let pts = Array.make (2 * n) Curve.infinity in
    Array.iteri
      (fun i (pk, _, sg) ->
         pts.(2 * i) <- sg.r;
         pts.(2 * i + 1) <-
           (match pre with
            | Some p -> Curve.precomp_point p.(i)  (* already affine *)
            | None -> pk))
      items;
    let aff = Curve.to_affine_batch curve pts in
    (* byte-identical to Curve.encode, from the batched affine forms *)
    let enc = function
      | None -> "\x00"
      | Some (x, y) -> "\x04" ^ Nat.to_bytes_be ~len x ^ Nat.to_bytes_be ~len y
    in
    let acc = Group_ctx.msm_acc gctx in
    Array.iteri
      (fun i (pk, msg, sg) ->
         let e =
           Curve.hash_to_scalar curve [ domain; enc aff.(2 * i); enc aff.(2 * i + 1); msg ]
         in
         (* Pinning the first weight to 1 is sound: a bad item i > 0 is
            caught except with probability 2^-128 over its own weight,
            and a bad item 0 alone leaves the sum off the identity
            deterministically. It saves item 0's R table in the MSM. *)
         let w = if i = 0 then Nat.one else Batch.weight rng in
         Group_ctx.acc_add acc (Modular.mul fn w (Modular.reduce fn sg.s)) (Group_ctx.g gctx);
         let we = Modular.mul fn w e in
         (match pre with
          | Some p -> Group_ctx.acc_add_pre acc we p.(i)
          | None ->
            (* hand the MSM the affine form of PK we already paid for:
               its input normalization then has less left to invert *)
            let pk =
              match aff.(2 * i + 1) with Some xy -> Curve.of_affine curve xy | None -> pk
            in
            Group_ctx.acc_add acc we pk);
         Group_ctx.acc_sub acc w sg.r)
      items;
    Group_ctx.acc_check acc
  end

(* Localize the invalid signatures of a failing batch (sorted indices;
   [] iff the whole batch verifies). *)
let verify_batch_find gctx rng items =
  Batch.find_failures ~n:(Array.length items)
    ~check:(fun ~lo ~len ->
        if len = 1 then (let pk, msg, sg = items.(lo) in verify gctx ~pk msg sg)
        else verify_batch gctx rng (Array.sub items lo len))

let encode gctx { s; r } =
  let curve = Group_ctx.curve gctx in
  let len = Curve.byte_len curve in
  Nat.to_bytes_be ~len s ^ Curve.encode_compressed curve r

let decode gctx bytes =
  let curve = Group_ctx.curve gctx in
  let len = Curve.byte_len curve in
  if String.length bytes <> 2 * len + 1 then None
  else
    match Curve.decode_compressed curve (String.sub bytes len (len + 1)) with
    | Some r when not (Curve.is_infinity r) ->
      Some { s = Nat.of_bytes_be (String.sub bytes 0 len); r }
    | _ -> None

let encode_pk gctx pk = Curve.encode (Group_ctx.curve gctx) pk
let decode_pk gctx s = Curve.decode (Group_ctx.curve gctx) s
