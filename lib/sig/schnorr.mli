(** Schnorr signatures over the shared group (Fiat-Shamir with SHA-256).
    Existentially unforgeable under the discrete-log assumption in the
    random-oracle model — the signature scheme assumed by the paper's
    Theorem 2 safety analysis. *)

module Nat = Dd_bignum.Nat
module Curve = Dd_group.Curve

type secret_key = Nat.t
type public_key = Curve.point
type signature

val keygen : Dd_group.Group_ctx.t -> Dd_crypto.Drbg.t -> secret_key * public_key

val sign :
  Dd_group.Group_ctx.t -> Dd_crypto.Drbg.t -> sk:secret_key -> pk:public_key -> string -> signature

(** [challenge gctx ~commitment ~pk msg] is the Fiat-Shamir challenge
    scalar. Exposed so benchmarks and tests can reconstruct the
    verification equation from its parts. *)
val challenge :
  Dd_group.Group_ctx.t -> commitment:Curve.point -> pk:public_key -> string -> Nat.t

(** Verify via one Strauss-Shamir pass ([s*G + e*PK]); public data
    only, so the variable-time paths are fine here. *)
val verify : Dd_group.Group_ctx.t -> pk:public_key -> string -> signature -> bool

(** Precomputed comb table for a public key, for verifying many
    signatures under the same key (e.g. a node's fellow VCs during an
    election). [verify_with_table] replaces the [e*PK] half of the
    verification equation with doubling-free comb adds. *)
type pk_table
val make_pk_table : Dd_group.Group_ctx.t -> public_key -> pk_table
val verify_with_table :
  Dd_group.Group_ctx.t -> pk:public_key -> pk_table:pk_table -> string -> signature -> bool

val encode : Dd_group.Group_ctx.t -> signature -> string
val decode : Dd_group.Group_ctx.t -> string -> signature option
val encode_pk : Dd_group.Group_ctx.t -> public_key -> string
val decode_pk : Dd_group.Group_ctx.t -> string -> public_key option
