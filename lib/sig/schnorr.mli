(** Schnorr signatures over the shared group (Fiat-Shamir with SHA-256).
    Existentially unforgeable under the discrete-log assumption in the
    random-oracle model — the signature scheme assumed by the paper's
    Theorem 2 safety analysis. *)

module Nat = Dd_bignum.Nat
module Curve = Dd_group.Curve

type secret_key = Nat.t
type public_key = Curve.point
type signature

val keygen : Dd_group.Group_ctx.t -> Dd_crypto.Drbg.t -> secret_key * public_key

val sign :
  Dd_group.Group_ctx.t -> Dd_crypto.Drbg.t -> sk:secret_key -> pk:public_key -> string -> signature

(** [challenge gctx ~commitment ~pk msg] is the Fiat-Shamir challenge
    scalar. Exposed so benchmarks and tests can reconstruct the
    verification equation from its parts. *)
val challenge :
  Dd_group.Group_ctx.t -> commitment:Curve.point -> pk:public_key -> string -> Nat.t

(** Verify via one Strauss-Shamir pass ([s*G + e*PK]); public data
    only, so the variable-time paths are fine here. *)
val verify : Dd_group.Group_ctx.t -> pk:public_key -> string -> signature -> bool

(** Precomputed comb table for a public key, for verifying many
    signatures under the same key (e.g. a node's fellow VCs during an
    election). [verify_with_table] replaces the [e*PK] half of the
    verification equation with doubling-free comb adds. *)
type pk_table
val make_pk_table : Dd_group.Group_ctx.t -> public_key -> pk_table
val verify_with_table :
  Dd_group.Group_ctx.t -> pk:public_key -> pk_table:pk_table -> string -> signature -> bool

(** Wide precomputed msm table for a public key ({!Dd_group.Curve.precompute}):
    the batch-verification analogue of {!make_pk_table}, worth building
    for long-lived keys verified across many batches. *)
val precompute_pk : Dd_group.Group_ctx.t -> public_key -> Dd_group.Curve.precomp

(** [verify_batch ?pre gctx rng items] verifies all [(pk, msg,
    signature)] triples at once: the n verification equations fold into
    one multi-scalar multiplication under independent random 128-bit
    weights drawn from [rng], and one Montgomery-trick normalization
    replaces the per-signature point-encoding inversions inside the
    challenge hash. [?pre] (parallel to [items]) supplies each key's
    precomputed table; the keys then skip normalization and per-call
    msm table builds. A batch with an invalid signature accepts with
    probability at most 2^-128 (see {!Dd_group.Batch}). Public data
    only (variable time). *)
val verify_batch :
  ?pre:Dd_group.Curve.precomp array ->
  Dd_group.Group_ctx.t -> Dd_crypto.Drbg.t ->
  (public_key * string * signature) array -> bool

(** Sorted indices of the invalid signatures, found by bisecting
    sub-batches; [[]] iff every signature verifies. *)
val verify_batch_find :
  Dd_group.Group_ctx.t -> Dd_crypto.Drbg.t ->
  (public_key * string * signature) array -> int list

val encode : Dd_group.Group_ctx.t -> signature -> string
val decode : Dd_group.Group_ctx.t -> string -> signature option
val encode_pk : Dd_group.Group_ctx.t -> public_key -> string
val decode_pk : Dd_group.Group_ctx.t -> string -> public_key option
