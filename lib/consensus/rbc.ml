(* Bracha reliable broadcast: INIT / ECHO / READY. Tolerates f Byzantine
   nodes out of n >= 3f+1; all honest nodes deliver the same payload for
   a given (sender, tag) instance, or none do, and if the sender is
   honest everyone delivers its payload.

   Payloads are identified by their SHA-256 inside ECHO/READY counting,
   so equivocating senders cannot split the quorum. The transport is a
   callback; the caller decides how messages travel (the simulator, in
   this repository). *)

type phase = Init | Echo | Ready

type msg = {
  phase : phase;
  origin : int;       (* the broadcasting node *)
  tag : string;       (* instance identifier, e.g. "vsc/round1/node3" *)
  payload : string;
}

type instance = {
  mutable echoed : bool;
  mutable ready_sent : bool;
  mutable delivered : bool;
  echo_counts : (string, (int, unit) Hashtbl.t) Hashtbl.t;   (* payload hash -> voters *)
  ready_counts : (string, (int, unit) Hashtbl.t) Hashtbl.t;
  payloads : (string, string) Hashtbl.t;                     (* hash -> payload *)
}

type t = {
  n : int;
  f : int;
  me : int;
  send_all : msg -> unit;
  deliver : origin:int -> tag:string -> string -> unit;
  instances : (int * string, instance) Hashtbl.t;
}

let create ~n ~f ~me ~send_all ~deliver =
  (* lint: allow exception-hygiene — constructor precondition on local config, not peer input *)
  if n < 3 * f + 1 then invalid_arg "Rbc.create: need n >= 3f+1";
  { n; f; me; send_all; deliver; instances = Hashtbl.create 64 }

let instance t key =
  match Hashtbl.find_opt t.instances key with
  | Some i -> i
  | None ->
    let i =
      { echoed = false; ready_sent = false; delivered = false;
        echo_counts = Hashtbl.create 4; ready_counts = Hashtbl.create 4;
        payloads = Hashtbl.create 4 }
    in
    Hashtbl.replace t.instances key i;
    i

let count tbl h =
  match Hashtbl.find_opt tbl h with
  | None -> 0
  | Some voters -> Hashtbl.length voters

let vote tbl h voter =
  let voters =
    match Hashtbl.find_opt tbl h with
    | Some v -> v
    | None -> let v = Hashtbl.create 8 in Hashtbl.replace tbl h v; v
  in
  Hashtbl.replace voters voter ()

let broadcast t ~tag payload =
  let m = { phase = Init; origin = t.me; tag; payload } in
  t.send_all m

let send_ready t inst ~origin ~tag payload =
  if not inst.ready_sent then begin
    inst.ready_sent <- true;
    t.send_all { phase = Ready; origin; tag; payload }
  end

let maybe_deliver t inst ~origin ~tag h =
  if not inst.delivered && count inst.ready_counts h >= 2 * t.f + 1 then begin
    inst.delivered <- true;
    match Hashtbl.find_opt inst.payloads h with
    | Some payload -> t.deliver ~origin ~tag payload
    | None -> ()  (* cannot happen: a READY always records its payload *)
  end

let on_message t ~from (m : msg) =
  let key = (m.origin, m.tag) in
  let inst = instance t key in
  let h = Dd_crypto.Sha256.digest m.payload in
  Hashtbl.replace inst.payloads h m.payload;
  match m.phase with
  | Init ->
    (* only the origin itself may initiate its broadcast *)
    if from = m.origin && not inst.echoed then begin
      inst.echoed <- true;
      t.send_all { m with phase = Echo; origin = m.origin }
    end
  | Echo ->
    vote inst.echo_counts h from;
    if 2 * count inst.echo_counts h > t.n + t.f then
      send_ready t inst ~origin:m.origin ~tag:m.tag m.payload;
    maybe_deliver t inst ~origin:m.origin ~tag:m.tag h
  | Ready ->
    vote inst.ready_counts h from;
    if count inst.ready_counts h >= t.f + 1 then
      send_ready t inst ~origin:m.origin ~tag:m.tag m.payload;
    maybe_deliver t inst ~origin:m.origin ~tag:m.tag h

(* --- wire format ----------------------------------------------------- *)

let encode_msg m =
  let w = Dd_codec.Wire.writer () in
  Dd_codec.Wire.put_varint w (match m.phase with Init -> 0 | Echo -> 1 | Ready -> 2);
  Dd_codec.Wire.put_varint w m.origin;
  Dd_codec.Wire.put_bytes w m.tag;
  Dd_codec.Wire.put_bytes w m.payload;
  Dd_codec.Wire.contents w

let decode_msg s =
  Dd_codec.Wire.decode s (fun r ->
      let phase =
        match Dd_codec.Wire.get_varint r with
        | 0 -> Init
        | 1 -> Echo
        | 2 -> Ready
        | _ -> raise (Dd_codec.Wire.Malformed "rbc phase")
      in
      let origin = Dd_codec.Wire.get_varint r in
      let tag = Dd_codec.Wire.get_bytes r in
      let payload = Dd_codec.Wire.get_bytes r in
      { phase; origin; tag; payload })
