(* FloodSet (Lynch, "Distributed Algorithms" §6.2): the synchronous
   set-agreement baseline the paper contrasts with. The peered bulletin
   board of Culnane-Schneider [22] agrees on its vote state with a
   FloodSet-style synchronous algorithm; D-DEMOS's contribution is
   replacing that with fully asynchronous Byzantine consensus deciding
   with exactly n-f inputs.

   The algorithm: for f+1 synchronous rounds, every node broadcasts
   every element it knows and unions what it receives; after round f+1
   all correct nodes hold the same set. Correct only for CRASH faults
   and only under synchrony (a late message = a crashed sender) — the
   tests demonstrate both the guarantee and, deliberately, how a
   Byzantine sender breaks it, which is the design argument for the
   paper's choice.

   Rounds are driven by the caller (a synchronous network layer would
   use timeouts): [round_payload] gives the elements to broadcast,
   [deliver] ingests a peer's round message, [advance_round] closes the
   round, and after [rounds_needed] rounds [decide] is stable. *)

type 'a t = {
  n : int;
  f : int;
  me : int;
  mutable known : 'a list;              (* sorted, deduplicated *)
  mutable round : int;                  (* current round, from 1 *)
  mutable received_from : int list;     (* senders seen this round *)
  mutable new_since_broadcast : bool;
}

let create ~n ~f ~me ~initial =
  (* lint: allow exception-hygiene — constructor precondition on local config, not peer input *)
  if f < 0 || f >= n then invalid_arg "Floodset.create: need 0 <= f < n";
  { n; f; me;
    known = List.sort_uniq compare initial;
    round = 1;
    received_from = [];
    new_since_broadcast = true }

let rounds_needed t = t.f + 1

(* Elements to broadcast this round. (The classic optimization of only
   flooding new elements is intentionally not applied: crash-recovery
   of the original algorithm relies on full retransmission.) *)
let round_payload t = t.known

let deliver t ~from elements =
  if from <> t.me && not (List.mem from t.received_from) then begin
    t.received_from <- from :: t.received_from;
    let merged = List.sort_uniq compare (elements @ t.known) in
    if merged <> t.known then begin
      t.known <- merged;
      t.new_since_broadcast <- true
    end
  end

(* Close the current round (the synchronous timeout). *)
let advance_round t =
  t.round <- t.round + 1;
  t.received_from <- []

let current_round t = t.round

let finished t = t.round > rounds_needed t

let decide t =
  (* lint: allow exception-hygiene — caller-side API contract, unreachable from the network *)
  if not (finished t) then invalid_arg "Floodset.decide: rounds remain";
  t.known
