(* Bracha's asynchronous binary consensus (local coin), batched over an
   arbitrary number of slots as the paper's prototype does for Vote Set
   Consensus: one protocol instance decides every ballot at once, with
   each message carrying a per-slot value vector.

   Each round has three steps, all carried by reliable broadcast:
     step 1: broadcast estimate; at n-f received, adopt the majority.
     step 2: broadcast the majority; a value counts only when justified
             by f+1 step-1 messages carrying it (so a Byzantine node
             cannot inject a value no honest node could have computed).
             At n-f validated, if > n/2 senders agree on w the node
             suggests deciding w, else suggests bottom.
     step 3: broadcast the suggestion; a non-bottom suggestion counts
             only when justified by > n/2 validated step-2 messages.
             At n-f validated: 2f+1 suggestions for w decide w, f+1
             adopt w as the new estimate, otherwise flip a local coin.

   Safety sketch for n >= 3f+1 (RBC makes every sender single-valued
   per step): two different step-2 suggestions would need > n/2 senders
   each, impossible; a decision by 2f+1 suggestions overlaps every
   other honest node's n-f validated set in >= f+1 senders, so everyone
   adopts the decided value and decides at the next round. If all
   honest nodes start unanimous, no other value can ever be justified
   and the first round decides. *)

type coin = Local | Common of string  (* Common: deterministic shared seed *)

type round_state = {
  (* step 1 *)
  s1_senders : (int, int array) Hashtbl.t;        (* sender -> per-slot 0/1 *)
  s1_count : int array array;                     (* slot -> value -> senders *)
  mutable s1_processed : bool;
  (* step 2 *)
  s2_senders : (int, int array) Hashtbl.t;
  s2_valid : int array array;                     (* slot -> value -> validated senders *)
  s2_valid_total : int array;                     (* slot -> validated senders *)
  mutable s2_pending : (int * int array) list;    (* (sender, vals) awaiting justification *)
  s2_validated : (int, bool array) Hashtbl.t;     (* sender -> per-slot validated flag *)
  mutable s2_processed : bool;
  (* step 3: values 0, 1, or 2 = bottom *)
  s3_senders : (int, int array) Hashtbl.t;
  s3_valid : int array array;                     (* slot -> value(0..2) -> validated *)
  s3_valid_total : int array;
  s3_validated : (int, bool array) Hashtbl.t;
  mutable s3_processed : bool;
}

type t = {
  n : int;
  f : int;
  me : int;
  slots : int;
  coin : coin;
  rng : Dd_crypto.Drbg.t;
  broadcast : string -> unit;          (* RBC-broadcast a payload from me *)
  on_decide : int -> bool -> unit;
  mutable est : int array;             (* current per-slot estimate *)
  decided : bool option array;
  mutable n_decided : int;
  mutable round : int;                 (* current round, from 1 *)
  mutable step : int;                  (* 1, 2 or 3: the step we are collecting *)
  rounds : (int, round_state) Hashtbl.t;
  mutable halted : bool;
  mutable all_decided_round : int option;
}

let fresh_round t =
  { s1_senders = Hashtbl.create (t.n * 2);
    s1_count = Array.init t.slots (fun _ -> Array.make 2 0);
    s1_processed = false;
    s2_senders = Hashtbl.create (t.n * 2);
    s2_valid = Array.init t.slots (fun _ -> Array.make 2 0);
    s2_valid_total = Array.make t.slots 0;
    s2_pending = [];
    s2_validated = Hashtbl.create (t.n * 2);
    s2_processed = false;
    s3_senders = Hashtbl.create (t.n * 2);
    s3_valid = Array.init t.slots (fun _ -> Array.make 3 0);
    s3_valid_total = Array.make t.slots 0;
    s3_validated = Hashtbl.create (t.n * 2);
    s3_processed = false }

let round_state t r =
  match Hashtbl.find_opt t.rounds r with
  | Some st -> st
  | None ->
    let st = fresh_round t in
    Hashtbl.replace t.rounds r st;
    st

let create ~n ~f ~me ~slots ~initial ~coin ~rng ~broadcast ~on_decide =
  (* lint: allow exception-hygiene — constructor precondition on local config, not peer input *)
  if n < 3 * f + 1 then invalid_arg "Binary_batch.create: need n >= 3f+1";
  (* lint: allow exception-hygiene — constructor precondition on local config, not peer input *)
  if Array.length initial <> slots then invalid_arg "Binary_batch.create: initial arity";
  { n; f; me; slots; coin; rng; broadcast; on_decide;
    est = Array.map (fun b -> if b then 1 else 0) initial;
    decided = Array.make slots None;
    n_decided = 0;
    round = 1;
    step = 1;
    rounds = Hashtbl.create 8;
    halted = false;
    all_decided_round = None }

(* --- message encoding: round, step, then 2 bits per slot ------------- *)

let encode_payload ~round ~step vals =
  let w = Dd_codec.Wire.writer () in
  Dd_codec.Wire.put_varint w round;
  Dd_codec.Wire.put_varint w step;
  Dd_codec.Wire.put_varint w (Array.length vals);
  let bits = Bytes.make ((Array.length vals + 3) / 4) '\000' in
  Array.iteri
    (fun i v ->
       let byte = i / 4 and off = 2 * (i mod 4) in
       Bytes.set bits byte (Char.chr (Char.code (Bytes.get bits byte) lor (v lsl off))))
    vals;
  Dd_codec.Wire.put_bytes w (Bytes.unsafe_to_string bits);
  Dd_codec.Wire.contents w

let decode_payload s =
  Dd_codec.Wire.decode s (fun r ->
      let round = Dd_codec.Wire.get_varint r in
      let step = Dd_codec.Wire.get_varint r in
      let len = Dd_codec.Wire.get_varint r in
      let bits = Dd_codec.Wire.get_bytes r in
      if String.length bits <> (len + 3) / 4 then
        raise (Dd_codec.Wire.Malformed "binary_batch: bitmap length");
      let vals =
        Array.init len (fun i -> (Char.code bits.[i / 4] lsr (2 * (i mod 4))) land 3)
      in
      (round, step, vals))

let send_step t ~step vals = t.broadcast (encode_payload ~round:t.round ~step vals)

let start t = send_step t ~step:1 t.est

let decided t = Array.copy t.decided
let all_decided t = t.n_decided = t.slots
let current_round t = t.round
let halted t = t.halted

let coin_flip t ~round ~slot =
  match t.coin with
  | Local -> if Dd_crypto.Drbg.bool t.rng then 1 else 0
  | Common seed ->
    let h =
      Dd_crypto.Sha256.digest_list [ "bb-coin"; seed; string_of_int round; string_of_int slot ]
    in
    Char.code h.[0] land 1

(* Validation triggers: when step-1 counts change, re-examine the
   pending step-2 entries; step-3 validation keys off step-2 validated
   counts. *)
let revalidate_s2 t (st : round_state) =
  let still_pending = ref [] in
  List.iter
    (fun (sender, vals) ->
       let flags =
         match Hashtbl.find_opt st.s2_validated sender with
         | Some fl -> fl
         | None ->
           let fl = Array.make t.slots false in
           Hashtbl.replace st.s2_validated sender fl;
           fl
       in
       let remaining = ref false in
       Array.iteri
         (fun slot v ->
            if not flags.(slot) then begin
              if v <= 1 && st.s1_count.(slot).(v) >= t.f + 1 then begin
                flags.(slot) <- true;
                st.s2_valid.(slot).(v) <- st.s2_valid.(slot).(v) + 1;
                st.s2_valid_total.(slot) <- st.s2_valid_total.(slot) + 1
              end else remaining := true
            end)
         vals;
       if !remaining then still_pending := (sender, vals) :: !still_pending)
    st.s2_pending;
  st.s2_pending <- !still_pending

let revalidate_s3 t (st : round_state) =
  let majority = t.n / 2 + 1 in
  Hashtbl.iter
    (fun sender vals ->
       let flags =
         match Hashtbl.find_opt st.s3_validated sender with
         | Some fl -> fl
         | None ->
           let fl = Array.make t.slots false in
           Hashtbl.replace st.s3_validated sender fl;
           fl
       in
       Array.iteri
         (fun slot v ->
            if not flags.(slot) then begin
              let justified = v = 2 || (v <= 1 && st.s2_valid.(slot).(v) >= majority) in
              if justified then begin
                flags.(slot) <- true;
                st.s3_valid.(slot).(v) <- st.s3_valid.(slot).(v) + 1;
                st.s3_valid_total.(slot) <- st.s3_valid_total.(slot) + 1
              end
            end)
         vals)
    st.s3_senders

let min_over_slots arr =
  Array.fold_left min max_int arr

(* Advance through steps/rounds as far as the received evidence allows. *)
let rec try_progress t =
  if not t.halted then begin
    let st = round_state t t.round in
    match t.step with
    | 1 ->
      if (not st.s1_processed) && Hashtbl.length st.s1_senders >= t.n - t.f then begin
        st.s1_processed <- true;
        (* adopt per-slot majority of the received estimates *)
        for slot = 0 to t.slots - 1 do
          t.est.(slot) <- if st.s1_count.(slot).(1) > st.s1_count.(slot).(0) then 1 else 0
        done;
        t.step <- 2;
        send_step t ~step:2 t.est;
        revalidate_s2 t st;
        revalidate_s3 t st;
        try_progress t
      end
    | 2 ->
      if (not st.s2_processed) && min_over_slots st.s2_valid_total >= t.n - t.f then begin
        st.s2_processed <- true;
        let majority = t.n / 2 + 1 in
        let suggestion =
          Array.init t.slots (fun slot ->
              if st.s2_valid.(slot).(1) >= majority then 1
              else if st.s2_valid.(slot).(0) >= majority then 0
              else 2)
        in
        t.step <- 3;
        send_step t ~step:3 suggestion;
        revalidate_s3 t st;
        try_progress t
      end
    | _ ->
      if (not st.s3_processed) && min_over_slots st.s3_valid_total >= t.n - t.f then begin
        st.s3_processed <- true;
        for slot = 0 to t.slots - 1 do
          let c0 = st.s3_valid.(slot).(0) and c1 = st.s3_valid.(slot).(1) in
          let decide v =
            if t.decided.(slot) = None then begin
              t.decided.(slot) <- Some (v = 1);
              t.n_decided <- t.n_decided + 1;
              t.on_decide slot (v = 1)
            end;
            t.est.(slot) <- v
          in
          if c1 >= 2 * t.f + 1 then decide 1
          else if c0 >= 2 * t.f + 1 then decide 0
          else if c1 >= t.f + 1 then t.est.(slot) <- 1
          else if c0 >= t.f + 1 then t.est.(slot) <- 0
          else if t.decided.(slot) = None then
            t.est.(slot) <- coin_flip t ~round:t.round ~slot
        done;
        if all_decided t && t.all_decided_round = None then
          t.all_decided_round <- Some t.round;
        (* run two extra rounds after local completion so laggards can
           gather our broadcasts, then halt *)
        (match t.all_decided_round with
         | Some r when t.round >= r + 2 -> t.halted <- true
         | _ ->
           t.round <- t.round + 1;
           t.step <- 1;
           send_step t ~step:1 t.est;
           try_progress t)
      end
  end

let on_deliver t ~from payload =
  if not t.halted then begin
    match decode_payload payload with
    | None -> ()  (* malformed: Byzantine sender, drop *)
    | Some (round, step, vals) ->
      if round >= 1 && Array.length vals = t.slots then begin
        let st = round_state t round in
        (match step with
         | 1 ->
           if (not (Hashtbl.mem st.s1_senders from))
           && Array.for_all (fun v -> v <= 1) vals then begin
             Hashtbl.replace st.s1_senders from vals;
             Array.iteri (fun slot v -> st.s1_count.(slot).(v) <- st.s1_count.(slot).(v) + 1) vals;
             revalidate_s2 t st
           end
         | 2 ->
           if (not (Hashtbl.mem st.s2_senders from))
           && Array.for_all (fun v -> v <= 1) vals then begin
             Hashtbl.replace st.s2_senders from vals;
             st.s2_pending <- (from, vals) :: st.s2_pending;
             revalidate_s2 t st;
             revalidate_s3 t st
           end
         | 3 ->
           if (not (Hashtbl.mem st.s3_senders from))
           && Array.for_all (fun v -> v <= 2) vals then begin
             Hashtbl.replace st.s3_senders from vals;
             revalidate_s3 t st
           end
         | _ -> ());
        try_progress t
      end
  end
