(** Byte-wise Shamir secret sharing over GF(256).

    Shares receipts and the master key [msk] across the VC nodes. Any
    [threshold] shares reconstruct; fewer leak nothing (information
    theoretically). *)

type share = {
  x : int;        (** evaluation point, [1..255] *)
  data : string;  (** same length as the secret *)
}

(** [split rng ~secret ~threshold ~shares] produces shares at
    [x = 1..shares]. Raises [Invalid_argument] on a bad threshold or
    more than 255 shares. *)
(* lint: secret *)
val split : Dd_crypto.Drbg.t -> secret:string -> threshold:int -> shares:int -> share array

(** [reconstruct ~threshold shares] interpolates at 0. Requires exactly
    [threshold] shares with pairwise distinct [x]. *)
val reconstruct : threshold:int -> share list -> string
