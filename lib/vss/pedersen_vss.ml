(* Pedersen's verifiable secret sharing [Pedersen, CRYPTO '91], the
   scheme the paper names for splitting election data among trustees.

   The dealer samples two degree-(k-1) polynomials f (with f(0) = s)
   and g (blinding), publishes Pedersen commitments to the paired
   coefficients, and sends (f(i), g(i)) to holder i. Each holder checks
   its share against the public commitments; shares (and the public
   commitment vectors) add homomorphically, so trustees can locally sum
   shares over the tally set and contribute one opening share of the
   homomorphic total. *)

module Nat = Dd_bignum.Nat
module Modular = Dd_bignum.Modular
module Group_ctx = Dd_group.Group_ctx
module Curve = Dd_group.Curve
module Pedersen = Dd_commit.Pedersen

type commitments = Pedersen.t array  (* one commitment per coefficient *)

type share = {
  x : int;
  f : Nat.t;   (* share of the secret polynomial *)
  g : Nat.t;   (* share of the blinding polynomial *)
}

let deal gctx rng ~secret ~threshold ~shares =
  if threshold < 1 || threshold > shares then invalid_arg "Pedersen_vss.deal: bad threshold";
  let fn = Group_ctx.scalar_field gctx in
  let fcoeffs, fshares = Shamir_scalar.split fn rng ~secret ~threshold ~shares in
  let gcoeffs, gshares =
    Shamir_scalar.split fn rng ~secret:(Group_ctx.random_scalar gctx rng) ~threshold ~shares
  in
  let commitments =
    Array.init threshold (fun j -> Pedersen.commit gctx ~msg:fcoeffs.(j) ~rand:gcoeffs.(j))
  in
  let shares =
    Array.init shares (fun i ->
        { x = fshares.(i).Shamir_scalar.x;
          f = fshares.(i).Shamir_scalar.value;
          g = gshares.(i).Shamir_scalar.value })
  in
  (commitments, shares)

(* Verify share (f_i, g_i) at x against the coefficient commitments:
   f_i*G + g_i*H must equal sum_j x^j * C_j. *)
let verify_share gctx (commitments : commitments) (s : share) =
  let fn = Group_ctx.scalar_field gctx in
  let curve = Group_ctx.curve gctx in
  let lhs = Pedersen.commit gctx ~msg:s.f ~rand:s.g in
  let rhs = ref Curve.infinity in
  let xj = ref Nat.one in
  (* Commitments and evaluation points are public — vartime is fine. *)
  Array.iter (fun c ->
      rhs := Curve.add curve !rhs (Curve.mul_vartime curve !xj c);
      xj := Modular.mul fn !xj (Modular.of_int fn s.x))
    commitments;
  Curve.equal curve lhs !rhs

(* Batch the check above over many (commitments, share) pairs: each
   equation f*G + g*H - sum_j x^j*C_j = O gets one random weight, all
   fold into one MSM accumulator (the G/H legs ride the comb tables).
   A trustee receiving shares of every ballot's prover state verifies
   them all for roughly the cost of one. Soundness 2^-128 per batch. *)
let verify_shares_serial gctx rng (items : (commitments * share) array) =
  match Array.length items with
  | 0 -> true
  | 1 -> let c, s = items.(0) in verify_share gctx c s
  | _ ->
    let fn = Group_ctx.scalar_field gctx in
    let acc = Group_ctx.msm_acc gctx in
    Array.iter
      (fun ((commitments : commitments), (s : share)) ->
         let w = Dd_group.Batch.weight rng in
         Group_ctx.acc_add acc (Modular.mul fn w (Modular.reduce fn s.f)) (Group_ctx.g gctx);
         Group_ctx.acc_add acc (Modular.mul fn w (Modular.reduce fn s.g)) (Group_ctx.h gctx);
         let x = Modular.of_int fn s.x in
         let xj = ref w in   (* w * x^j, starting at j = 0 *)
         Array.iter
           (fun c ->
              Group_ctx.acc_sub acc !xj c;
              xj := Modular.mul fn !xj x)
           commitments)
      items;
    Group_ctx.acc_check acc

(* With a multi-domain [?pool] and a large enough batch, shard the
   items and AND the per-shard randomized batches: a batch that holds
   under one weighting holds under any, so the verdict is unchanged.
   Shard DRBGs are forked serially up front — weights cannot depend on
   the schedule. *)
let verify_shares_batch ?pool gctx rng (items : (commitments * share) array) =
  let n = Array.length items in
  let psize = match pool with Some p -> Dd_parallel.Pool.size p | None -> 1 in
  if psize <= 1 || n < 64 then verify_shares_serial gctx rng items
  else begin
    let pool = Option.get pool in
    let nshards = min psize ((n + 31) / 32) in
    let rngs =
      Array.init nshards (fun i ->
          Dd_crypto.Drbg.fork rng ~label:(Printf.sprintf "vss-shard%d" i))
    in
    let verdicts =
      Dd_parallel.Pool.parallel_map pool ~chunk:1
        (fun shard ->
           let lo = shard * n / nshards and hi = (shard + 1) * n / nshards in
           verify_shares_serial gctx rngs.(shard) (Array.sub items lo (hi - lo)))
        (Array.init nshards (fun i -> i))
    in
    Array.for_all (fun b -> b) verdicts
  end

(* The public commitment to the secret itself is the constant-term
   commitment. *)
let secret_commitment (commitments : commitments) = commitments.(0)

let reconstruct gctx ~threshold (shares : share list) =
  let fn = Group_ctx.scalar_field gctx in
  let fshares = List.map (fun s -> { Shamir_scalar.x = s.x; Shamir_scalar.value = s.f }) shares in
  Shamir_scalar.reconstruct fn ~threshold fshares

(* Reconstruct both the secret and the blinding value, e.g. to check the
   result against the constant-term commitment. *)
let reconstruct_with_blinding gctx ~threshold (shares : share list) =
  let fn = Group_ctx.scalar_field gctx in
  let f = Shamir_scalar.reconstruct fn ~threshold
      (List.map (fun s -> { Shamir_scalar.x = s.x; Shamir_scalar.value = s.f }) shares)
  in
  let g = Shamir_scalar.reconstruct fn ~threshold
      (List.map (fun s -> { Shamir_scalar.x = s.x; Shamir_scalar.value = s.g }) shares)
  in
  (f, g)

let add_shares gctx a b =
  if a.x <> b.x then invalid_arg "Pedersen_vss.add_shares: mismatched evaluation points";
  let fn = Group_ctx.scalar_field gctx in
  { x = a.x; f = Modular.add fn a.f b.f; g = Modular.add fn a.g b.g }

let sum_shares gctx ~x l =
  List.fold_left (add_shares gctx) { x; f = Nat.zero; g = Nat.zero } l

let add_commitments gctx (a : commitments) (b : commitments) : commitments =
  if Array.length a <> Array.length b then
    invalid_arg "Pedersen_vss.add_commitments: degree mismatch";
  Array.mapi (fun i ai -> Pedersen.add gctx ai b.(i)) a

let sum_commitments gctx ~threshold l =
  let zero = Array.make threshold Curve.infinity in
  List.fold_left (add_commitments gctx) zero l
