(** Verifiable secret sharing of lifted-ElGamal commitment openings:
    shares verify against the public commitment itself (constant term)
    plus published auxiliary coefficient commitments, and both shares
    and aux vectors add homomorphically. The trustees' sharing of
    option-encoding openings. *)

module Nat = Dd_bignum.Nat
module Elgamal = Dd_commit.Elgamal

type share = {
  x : int;
  msg : Nat.t;
  rand : Nat.t;
}

type aux = Elgamal.t array

(* lint: secret *)
val deal :
  Dd_group.Group_ctx.t -> Dd_crypto.Drbg.t -> opening:Elgamal.opening ->
  threshold:int -> shares:int -> aux * share array

(** Verify a share against the shared commitment and its aux vector. *)
val verify_share :
  Dd_group.Group_ctx.t -> commitment:Elgamal.t -> aux:aux -> share -> bool

(** Verify many (commitment, aux, share) triples with one multi-scalar
    multiplication under random 128-bit weights; accepts a batch
    containing a bad share with probability at most 2^-128.
    {b Variable time} — public data only. *)
val verify_shares_batch :
  ?pool:Dd_parallel.Pool.t ->
  Dd_group.Group_ctx.t -> Dd_crypto.Drbg.t -> (Elgamal.t * aux * share) array -> bool

val reconstruct :
  Dd_group.Group_ctx.t -> threshold:int -> share list -> Elgamal.opening

val add_shares : Dd_group.Group_ctx.t -> share -> share -> share
val sum_shares : Dd_group.Group_ctx.t -> x:int -> share list -> share
val add_aux : Dd_group.Group_ctx.t -> aux -> aux -> aux
val sum_aux : Dd_group.Group_ctx.t -> threshold:int -> aux list -> aux
