(* Verifiable secret sharing of lifted-ElGamal commitment openings.

   An opening is a scalar pair (msg, rand). The dealer shares both with
   degree-(k-1) polynomials F_m, F_r whose coefficient pairs are
   published as ElGamal commitments C_j = (r_j*G, m_j*G + r_j*H); the
   constant-term commitment C_0 is exactly the original option-encoding
   commitment on the BB, so shares verify directly against public
   election data:

     (r_i*G, m_i*G + r_i*H)  =  sum_j  i^j * C_j   (componentwise).

   Shares and auxiliary commitment vectors are additively homomorphic,
   which is what lets each trustee sum its shares over the tally set
   Etally and submit one verifiable opening share of the homomorphic
   total Esum. *)

module Nat = Dd_bignum.Nat
module Modular = Dd_bignum.Modular
module Group_ctx = Dd_group.Group_ctx
module Curve = Dd_group.Curve
module Elgamal = Dd_commit.Elgamal

type share = {
  x : int;
  msg : Nat.t;    (* F_m(x) *)
  rand : Nat.t;   (* F_r(x) *)
}

(* Commitments to the non-constant coefficient pairs (C_1 .. C_{k-1});
   C_0 is the commitment being shared and is carried separately. *)
type aux = Elgamal.t array

let deal gctx rng ~(opening : Elgamal.opening) ~threshold ~shares =
  let fn = Group_ctx.scalar_field gctx in
  let mcoeffs, mshares =
    Shamir_scalar.split fn rng ~secret:opening.Elgamal.msg ~threshold ~shares
  in
  let rcoeffs, rshares =
    Shamir_scalar.split fn rng ~secret:opening.Elgamal.rand ~threshold ~shares
  in
  let aux =
    Array.init (threshold - 1) (fun j ->
        Elgamal.commit gctx ~msg:mcoeffs.(j + 1) ~rand:rcoeffs.(j + 1))
  in
  let shares =
    Array.init shares (fun i ->
        { x = mshares.(i).Shamir_scalar.x;
          msg = mshares.(i).Shamir_scalar.value;
          rand = rshares.(i).Shamir_scalar.value })
  in
  (aux, shares)

let verify_share gctx ~(commitment : Elgamal.t) ~(aux : aux) (s : share) =
  let fn = Group_ctx.scalar_field gctx in
  let lhs = Elgamal.commit gctx ~msg:s.msg ~rand:s.rand in
  let rhs = ref commitment in
  let xj = ref Nat.one in
  let x = Modular.of_int fn s.x in
  Array.iter
    (fun cj ->
       xj := Modular.mul fn !xj x;
       let c1, c2 = Elgamal.components cj in
       let curve = Group_ctx.curve gctx in
       (* Aux commitments and evaluation points are public — vartime. *)
       let scaled =
         Elgamal.make ~c1:(Curve.mul_vartime curve !xj c1)
           ~c2:(Curve.mul_vartime curve !xj c2)
       in
       rhs := Elgamal.add gctx !rhs scaled)
    aux;
  Elgamal.equal gctx lhs !rhs

(* Batch verify_share over many (commitment, aux, share) triples: the
   componentwise equations
     rand*G - c1 - sum_j x^j*aux_c1_j = O
     msg*G + rand*H - c2 - sum_j x^j*aux_c2_j = O       (j >= 1)
   each get a fresh random weight and fold into one MSM accumulator.
   Soundness 2^-128 per batch; public data only (vartime). *)
let verify_shares_serial gctx rng (items : (Elgamal.t * aux * share) array) =
  match Array.length items with
  | 0 -> true
  | 1 -> let c, aux, s = items.(0) in verify_share gctx ~commitment:c ~aux s
  | _ ->
    let fn = Group_ctx.scalar_field gctx in
    let acc = Group_ctx.msm_acc gctx in
    Array.iter
      (fun (commitment, (aux : aux), (s : share)) ->
         let msg = Modular.reduce fn s.msg and rand = Modular.reduce fn s.rand in
         let w1 = Dd_group.Batch.weight rng in
         let w2 = Dd_group.Batch.weight rng in
         Group_ctx.acc_add acc (Modular.mul fn w1 rand) (Group_ctx.g gctx);
         Group_ctx.acc_add acc (Modular.mul fn w2 msg) (Group_ctx.g gctx);
         Group_ctx.acc_add acc (Modular.mul fn w2 rand) (Group_ctx.h gctx);
         let c1, c2 = Elgamal.components commitment in
         Group_ctx.acc_sub acc w1 c1;
         Group_ctx.acc_sub acc w2 c2;
         let x = Modular.of_int fn s.x in
         let xj = ref x in   (* x^j, starting at j = 1 *)
         Array.iter
           (fun cj ->
              let a1, a2 = Elgamal.components cj in
              Group_ctx.acc_sub acc (Modular.mul fn w1 !xj) a1;
              Group_ctx.acc_sub acc (Modular.mul fn w2 !xj) a2;
              xj := Modular.mul fn !xj x)
           aux)
      items;
    Group_ctx.acc_check acc

(* Sharded variant; see Pedersen_vss.verify_shares_batch — same
   verdict-preservation argument, same serial fork discipline. *)
let verify_shares_batch ?pool gctx rng (items : (Elgamal.t * aux * share) array) =
  let n = Array.length items in
  let psize = match pool with Some p -> Dd_parallel.Pool.size p | None -> 1 in
  if psize <= 1 || n < 64 then verify_shares_serial gctx rng items
  else begin
    let pool = Option.get pool in
    let nshards = min psize ((n + 31) / 32) in
    let rngs =
      Array.init nshards (fun i ->
          Dd_crypto.Drbg.fork rng ~label:(Printf.sprintf "vss-shard%d" i))
    in
    let verdicts =
      Dd_parallel.Pool.parallel_map pool ~chunk:1
        (fun shard ->
           let lo = shard * n / nshards and hi = (shard + 1) * n / nshards in
           verify_shares_serial gctx rngs.(shard) (Array.sub items lo (hi - lo)))
        (Array.init nshards (fun i -> i))
    in
    Array.for_all (fun b -> b) verdicts
  end

let reconstruct gctx ~threshold (shares : share list) : Elgamal.opening =
  let fn = Group_ctx.scalar_field gctx in
  let msg =
    Shamir_scalar.reconstruct fn ~threshold
      (List.map (fun s -> { Shamir_scalar.x = s.x; Shamir_scalar.value = s.msg }) shares)
  in
  let rand =
    Shamir_scalar.reconstruct fn ~threshold
      (List.map (fun s -> { Shamir_scalar.x = s.x; Shamir_scalar.value = s.rand }) shares)
  in
  { Elgamal.msg; Elgamal.rand }

let add_shares gctx a b =
  if a.x <> b.x then invalid_arg "Elgamal_vss.add_shares: mismatched evaluation points";
  let fn = Group_ctx.scalar_field gctx in
  { x = a.x; msg = Modular.add fn a.msg b.msg; rand = Modular.add fn a.rand b.rand }

let sum_shares gctx ~x l =
  List.fold_left (add_shares gctx) { x; msg = Nat.zero; rand = Nat.zero } l

let add_aux gctx (a : aux) (b : aux) : aux =
  if Array.length a <> Array.length b then invalid_arg "Elgamal_vss.add_aux: degree mismatch";
  Array.mapi (fun i ai -> Elgamal.add gctx ai b.(i)) a

let sum_aux gctx ~threshold l =
  let zero = Array.make (threshold - 1) (Elgamal.zero_commitment gctx) in
  List.fold_left (add_aux gctx) zero l
