(** Pedersen's verifiable secret sharing (CRYPTO '91): information-
    theoretically hiding, verifiable against public coefficient
    commitments, and additively homomorphic in both shares and
    commitments. *)

module Nat = Dd_bignum.Nat
module Pedersen = Dd_commit.Pedersen

type commitments = Pedersen.t array

type share = {
  x : int;
  f : Nat.t;  (** evaluation of the secret polynomial *)
  g : Nat.t;  (** evaluation of the blinding polynomial *)
}

(** Deal [secret] with reconstruction threshold [threshold] to [shares]
    holders (x = 1..shares). Returns the public coefficient commitments
    and the private shares. *)
val deal :
  Dd_group.Group_ctx.t -> Dd_crypto.Drbg.t -> secret:Nat.t -> threshold:int -> shares:int ->
  commitments * share array

(** Check one share against the public commitments. *)
val verify_share : Dd_group.Group_ctx.t -> commitments -> share -> bool

(** Check many (commitments, share) pairs with one multi-scalar
    multiplication under random 128-bit weights; accepts a batch
    containing a bad share with probability at most 2^-128.
    {b Variable time} — commitments and evaluation points are
    public. *)
val verify_shares_batch :
  ?pool:Dd_parallel.Pool.t ->
  Dd_group.Group_ctx.t -> Dd_crypto.Drbg.t -> (commitments * share) array -> bool

(** The Pedersen commitment to the secret (the constant coefficient). *)
val secret_commitment : commitments -> Pedersen.t

(** Reconstruct from exactly [threshold] verified shares. *)
val reconstruct : Dd_group.Group_ctx.t -> threshold:int -> share list -> Nat.t

(** Also recover the blinding value, so the pair can be re-checked
    against {!secret_commitment}. *)
val reconstruct_with_blinding :
  Dd_group.Group_ctx.t -> threshold:int -> share list -> Nat.t * Nat.t

val add_shares : Dd_group.Group_ctx.t -> share -> share -> share
val sum_shares : Dd_group.Group_ctx.t -> x:int -> share list -> share
val add_commitments : Dd_group.Group_ctx.t -> commitments -> commitments -> commitments
val sum_commitments : Dd_group.Group_ctx.t -> threshold:int -> commitments list -> commitments
