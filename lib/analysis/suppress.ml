(* (line, rule) pairs harvested from "lint: allow" comments. The scan
   is purely textual — comments are dropped by the parser, so the AST
   rules cannot see them — and deliberately forgiving: it looks for the
   marker anywhere in the line and reads the following words as rule
   names until a word that cannot be a rule name (or the comment
   terminator) is reached. *)

type t = (int * string) list

let marker = "lint: allow"

let is_rule_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '-' || c = '_'

(* Index of [marker] inside [line], or -1. *)
let find_marker line =
  let n = String.length line and m = String.length marker in
  let rec go i =
    if i + m > n then -1
    else if String.sub line i m = marker then i
    else go (i + 1)
  in
  go 0

let rules_after line start =
  let n = String.length line in
  let rec skip_ws i = if i < n && line.[i] = ' ' then skip_ws (i + 1) else i in
  let rec words i acc =
    let i = skip_ws i in
    if i >= n || not (is_rule_char line.[i]) then acc
    else begin
      let j = ref i in
      while !j < n && is_rule_char line.[!j] do incr j done;
      words !j (String.sub line i (!j - i) :: acc)
    end
  in
  words start []

let scan source =
  let lines = String.split_on_char '\n' source in
  let _, acc =
    List.fold_left
      (fun (lineno, acc) line ->
         let acc =
           match find_marker line with
           | -1 -> acc
           | i ->
             List.fold_left
               (fun acc rule -> (lineno, rule) :: acc)
               acc
               (rules_after line (i + String.length marker))
         in
         (lineno + 1, acc))
      (1, []) lines
  in
  acc

let allowed t ~rule ~line =
  List.exists (fun (l, r) -> r = rule && (l = line || l = line - 1)) t
