(* "lint: allow" suppression comments, harvested textually — comments
   are dropped by the parser, so the AST rules cannot see them.

   Grammar, per line: anything, then the marker, then one or more
   known rule names, then a mandatory free-form justification on the
   same line. Words are read as rule names only while they match the
   [known] rule list; the first unrecognized word starts the
   justification. An allow that names rules but carries no
   justification is itself reported (rule "bare-allow"): a suppression
   nobody can audit is a finding, not an exemption. Marker text with
   no candidate rule word at all (e.g. the marker mentioned inside a
   string or prose comment) is ignored entirely. *)

type entry = {
  line : int;
  rules : string list;      (* recognized rule names, in source order *)
  justified : bool;         (* non-empty rationale after the rule names *)
}

type t = entry list

let marker = "lint: allow"

let is_rule_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '-' || c = '_'

let is_alnum c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

(* Index of [marker] inside [line], or -1. *)
let find_marker line =
  let n = String.length line and m = String.length marker in
  let rec go i =
    if i + m > n then -1
    else if String.sub line i m = marker then i
    else go (i + 1)
  in
  go 0

(* Rule words from [start]: consume words while they are in [known];
   return them plus the position where the justification begins. *)
let rules_after ~known line start =
  let n = String.length line in
  let rec skip_ws i = if i < n && (line.[i] = ' ' || line.[i] = '\t') then skip_ws (i + 1) else i in
  let rec words i acc =
    let i = skip_ws i in
    if i >= n || not (is_rule_char line.[i]) then (List.rev acc, i)
    else begin
      let j = ref i in
      while !j < n && is_rule_char line.[!j] do incr j done;
      let w = String.sub line i (!j - i) in
      if List.mem w known then words !j (w :: acc)
      else (List.rev acc, i)
    end
  in
  words start []

(* The rest of the line counts as a justification if it contains any
   alphanumeric outside the comment terminator — dashes and "*)" alone
   do not explain anything. *)
let has_justification line start =
  let n = String.length line in
  let rec go i =
    if i >= n then false
    else if i + 1 < n && line.[i] = '*' && line.[i + 1] = ')' then go (i + 2)
    else if is_alnum line.[i] then true
    else go (i + 1)
  in
  go start

(* Was there at least one word-like token after the marker? Used to
   tell a real (but misspelled/bare) allow from an incidental mention
   of the marker text. *)
let has_candidate_word line start =
  let n = String.length line in
  let rec go i =
    if i >= n then false
    else if line.[i] = ' ' || line.[i] = '\t' then go (i + 1)
    else is_rule_char line.[i]
  in
  go start

let scan ~known source =
  let lines = String.split_on_char '\n' source in
  let _, acc =
    List.fold_left
      (fun (lineno, acc) line ->
         let acc =
           match find_marker line with
           | -1 -> acc
           | i ->
             let start = i + String.length marker in
             if not (has_candidate_word line start) then acc
             else begin
               let rules, rest = rules_after ~known line start in
               { line = lineno; rules; justified = has_justification line rest }
               :: acc
             end
         in
         (lineno + 1, acc))
      (1, []) lines
  in
  List.rev acc

let allowed t ~rule ~line =
  List.exists
    (fun e -> List.mem rule e.rules && (e.line = line || e.line = line - 1))
    t

let unjustified t =
  List.filter_map
    (fun e ->
       if e.rules = [] then
         (* candidate words present but none is a known rule: a typo'd
            allow suppresses nothing — surface it even when the rest of
            the line reads like a justification *)
         Some (e.line, [])
       else if e.justified then None
       else Some (e.line, e.rules))
    t
