(** The intraprocedural half of the dataflow framework: forward taint
    propagation over one expression tree, parameterized by client
    [hooks] that decide sources, field-level secrets, and what calls
    do (summaries, sinks, reports). {!Taint} instantiates it for rule
    R7; the propagation rules and their documented approximations live
    here and in docs/INVARIANTS.md §R7. *)

type taint = {
  origin : string;          (** human description of where the taint began *)
  origin_loc : Location.t;
}

module Env : Map.S with type key = string

(** Tainted local names currently in scope. *)
type env = taint Env.t

type hooks = {
  ident : Longident.t -> Location.t -> taint option;
      (** is this free identifier a source (secret-named, annotated
          [*.mli] value, ...)? *)
  field : Longident.t -> Location.t -> taint option;
      (** is this record label a declared-secret field? consulted on
          both [r.f] projections and [{ f; _ }] destructuring *)
  call :
    eval:(env -> Parsetree.expression -> taint option) ->
    env:env ->
    callee:Longident.t ->
    loc:Location.t ->
    args:(Asttypes.arg_label * Parsetree.expression * taint option) list ->
    taint option;
      (** result taint of a call whose argument taints are already
          computed; the client reports sink findings from inside this
          hook (it sees every application with an identifier callee,
          including operators such as [=] and [:=]) *)
}

(** [eval hooks env e] walks [e], reporting via [hooks.call] as it
    goes, and returns the taint the whole expression exposes. *)
val eval : hooks -> env -> Parsetree.expression -> taint option

(** Extend [env] with the names bound by [pat] when matching a value
    of the given aggregate [taint]; [rhs] (when syntactically known)
    enables componentwise tuple binding. Names the pattern binds are
    always shadowed first. *)
val bind_pattern :
  hooks -> env -> Parsetree.pattern -> taint option ->
  rhs:Parsetree.expression option -> env
