(* Finding baselines: the mechanism that lets a new rule land without
   blocking CI on legacy findings, without ever hiding new ones.

   A baseline file is line-oriented; '#' starts a comment, blanks are
   ignored. Each entry is

     <fingerprint> <rule> <file> added=<YYYY-MM-DD>

   Fingerprints come from [Findings.fingerprint_all] and are stable
   across unrelated edits (no line numbers involved). Matching is by
   fingerprint alone; rule/file/date are carried for the humans and
   for the nightly expiry check (CI fails when entries outlive the PR
   that introduced them — see .github/workflows/ci.yml). *)

type entry = {
  fp : string;
  rule : string;
  file : string;
  added : string;   (* YYYY-MM-DD *)
}

let parse source =
  String.split_on_char '\n' source
  |> List.filter_map (fun line ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let words =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | [] -> None
      | fp :: rest ->
        let field prefix =
          List.find_map
            (fun w ->
               let n = String.length prefix in
               if String.length w > n && String.sub w 0 n = prefix then
                 Some (String.sub w n (String.length w - n))
               else None)
            rest
        in
        let plain = List.filter (fun w -> not (String.contains w '=')) rest in
        Some
          { fp;
            rule = (match plain with r :: _ -> r | [] -> "");
            file = (match plain with _ :: f :: _ -> f | _ -> "");
            added = Option.value ~default:"" (field "added=") })

let format entries =
  let header =
    "# ddemos-lint baseline: known findings that predate the rule that\n\
     # reports them. One entry per line: <fingerprint> <rule> <file>\n\
     # added=<date>. Regenerate with: ddemos_lint --write-baseline <file>.\n\
     # The nightly lint-baseline-empty check fails when entries linger.\n"
  in
  header
  ^ String.concat ""
      (List.map
         (fun e -> Printf.sprintf "%s %s %s added=%s\n" e.fp e.rule e.file e.added)
         entries)

let of_findings ~date fs =
  List.map
    (fun (f : Findings.t) ->
       { fp = f.Findings.fingerprint; rule = f.Findings.rule; file = f.Findings.file;
         added = date })
    fs

type application = {
  fresh : Findings.t list;       (* not in the baseline: these fail the build *)
  baselined : Findings.t list;   (* matched an entry: reported, not fatal *)
  stale : entry list;            (* entries matching no finding: remove them *)
}

let apply entries fs =
  let known = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace known e.fp ()) entries;
  let matched = Hashtbl.create 16 in
  let fresh, baselined =
    List.partition
      (fun (f : Findings.t) ->
         if Hashtbl.mem known f.Findings.fingerprint then begin
           Hashtbl.replace matched f.Findings.fingerprint ();
           false
         end
         else true)
      fs
  in
  let stale = List.filter (fun e -> not (Hashtbl.mem matched e.fp)) entries in
  { fresh; baselined; stale }
