(** Rule R7 [secret-taint]: interprocedural forward taint tracking
    from secret sources (DRBG outputs, [(* lint: secret *)]-annotated
    [.mli] values and record fields, secret-named identifiers as a
    fallback) to the sinks where a secret must never arrive (the
    variable-time group surface, [Dd_codec.Wire] encoders, early-exit
    comparison, formatted output). Supersedes R5's name heuristic with
    real value flow: rebinding, destructuring, and cross-function
    flows via per-function summaries over the {!Callgraph}.
    docs/INVARIANTS.md §R7 states the threat model, the source/sink
    tables, the summary semantics and the known approximations. *)

val rule_name : string     (** ["secret-taint"] *)

val short : string         (** one-line description for [--list-rules] *)

(** Findings are reported only in files under [lib/]. *)
val scope : string -> bool

(** Run the whole-program analysis. [files] are the parsed
    implementations, [interfaces] the raw [.mli] sources scanned for
    [(* lint: secret *)] / [(* lint: public *)] annotations.
    Returned findings are sorted but not yet suppression-filtered. *)
val run :
  files:(string * Parsetree.structure) list ->
  interfaces:(string * string) list ->
  Findings.t list
