(** Suppression comments.

    A finding of rule [r] on line [n] is suppressed when the source
    carries [(* lint: allow r <justification> *)] on line [n] itself or
    on line [n - 1] (the comment-above idiom). Several rules can be
    allowed at once: [(* lint: allow ct-equality sans-io ... *)].
    Everything after the rule names is free-form justification. *)

type t

(** Scan raw source text for allow comments. *)
val scan : string -> t

(** Is [rule] allowed at [line]? *)
val allowed : t -> rule:string -> line:int -> bool
