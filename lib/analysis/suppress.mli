(** Suppression comments.

    A finding of rule [r] on line [n] is suppressed when the source
    carries [(* lint: allow r <why> *)] on line [n] itself or on line
    [n - 1] (the comment-above idiom). Several rules can be allowed at
    once: [(* lint: allow ct-equality sans-io <why> *)]. The
    justification [<why>] is mandatory: an allow with no rationale (or
    naming no known rule) is itself reported under rule "bare-allow".
    Rule names are validated against the [known] list, so the
    justification simply begins at the first non-rule word. *)

type entry = {
  line : int;
  rules : string list;  (** recognized rule names *)
  justified : bool;     (** rationale text present on the same line *)
}

type t = entry list

(** Scan raw source text for allow comments; [known] is the list of
    valid rule names. *)
val scan : known:string list -> string -> t

(** Is [rule] allowed at [line]? *)
val allowed : t -> rule:string -> line:int -> bool

(** Allows that carry no justification (or name no known rule):
    [(line, recognized_rules)] pairs, for "bare-allow" findings. *)
val unjustified : t -> (int * string list) list
