(* Module-qualified call graph over a set of parsed files.

   Each compilation unit contributes its top-level functions (and the
   functions of its nested modules) under qualified names:
   [lib/core/ea.ml]'s [let setup ... = ...] registers as "Ea.setup",
   [module Inner = struct let f = ... end] as "Ea.Inner.f". Call sites
   are resolved syntactically: an unqualified [f] resolves inside the
   calling unit, [M.f] resolves against the last module component, so
   local aliases ([module Pool = Dd_parallel.Pool]) still land on the
   right summaries as long as component names are unambiguous. *)

open Parsetree

type fn = {
  fq : string;                          (* "Ea.setup", "Ea.Inner.f" *)
  unit_module : string;                 (* "Ea" *)
  params : (Asttypes.arg_label * pattern) list;  (* in declaration order *)
  body : expression;                    (* innermost non-fun expression *)
  loc : Location.t;
}

type t = {
  by_fq : (string, fn) Hashtbl.t;
  (* (last module component, value name) -> fq, for [M.f] call sites *)
  by_tail : (string * string, string) Hashtbl.t;
  order : fn list;                      (* declaration order, all units *)
}

let module_of_path path =
  Filename.basename path |> Filename.remove_extension |> String.capitalize_ascii

(* Peel type annotations and newtypes; collect the [fun] parameter
   chain. A binding whose body is not a function contributes no [fn]
   (top-level values are handled by the taint engine directly). *)
let rec split_params e =
  match e.pexp_desc with
  | Pexp_fun (label, _default, pat, body) ->
    let params, inner = split_params body in
    ((label, pat) :: params, inner)
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_newtype (_, e) ->
    split_params e
  | _ -> ([], e)

let empty () =
  { by_fq = Hashtbl.create 64; by_tail = Hashtbl.create 64; order = [] }

let add t fn =
  if not (Hashtbl.mem t.by_fq fn.fq) then begin
    Hashtbl.replace t.by_fq fn.fq fn;
    (match String.rindex_opt fn.fq '.' with
     | None -> ()
     | Some i ->
       let name = String.sub fn.fq (i + 1) (String.length fn.fq - i - 1) in
       let prefix = String.sub fn.fq 0 i in
       let last_mod =
         match String.rindex_opt prefix '.' with
         | None -> prefix
         | Some j -> String.sub prefix (j + 1) (String.length prefix - j - 1)
       in
       if not (Hashtbl.mem t.by_tail (last_mod, name)) then
         Hashtbl.replace t.by_tail (last_mod, name) fn.fq);
    { t with order = fn :: t.order }
  end
  else t

let rec harvest_structure t ~unit_module ~prefix items =
  List.fold_left
    (fun t item ->
       match item.pstr_desc with
       | Pstr_value (_, bindings) ->
         List.fold_left
           (fun t vb ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } ->
                (match split_params vb.pvb_expr with
                 | [], _ -> t
                 | params, body ->
                   add t
                     { fq = prefix ^ "." ^ txt; unit_module; params; body;
                       loc = vb.pvb_loc })
              | _ -> t)
           t bindings
       | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } ->
         harvest_module_expr t ~unit_module ~prefix:(prefix ^ "." ^ name) pmb_expr
       | Pstr_recmodule mbs ->
         List.fold_left
           (fun t mb ->
              match mb.pmb_name.Asttypes.txt with
              | Some name ->
                harvest_module_expr t ~unit_module ~prefix:(prefix ^ "." ^ name)
                  mb.pmb_expr
              | None -> t)
           t mbs
       | _ -> t)
    t items

and harvest_module_expr t ~unit_module ~prefix me =
  match me.pmod_desc with
  | Pmod_structure items -> harvest_structure t ~unit_module ~prefix items
  | Pmod_functor (_, body) -> harvest_module_expr t ~unit_module ~prefix body
  | Pmod_constraint (me, _) -> harvest_module_expr t ~unit_module ~prefix me
  | _ -> t

let build files =
  let t =
    List.fold_left
      (fun t (path, structure) ->
         let m = module_of_path path in
         harvest_structure t ~unit_module:m ~prefix:m structure)
      (empty ()) files
  in
  { t with order = List.rev t.order }

let functions t = t.order

let find t fq = Hashtbl.find_opt t.by_fq fq

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply (l, _) -> flatten l

(* Resolve a call site in [current] (a dotted module prefix, e.g.
   "Ea" or "Ea.Inner"): unqualified names search the enclosing module
   chain outwards; qualified names resolve by their last (module, name)
   pair. *)
let resolve t ~current lid =
  match List.rev (flatten lid) with
  | [] -> None
  | [ name ] ->
    let rec search prefix =
      match Hashtbl.find_opt t.by_fq (prefix ^ "." ^ name) with
      | Some fn -> Some fn
      | None ->
        (match String.rindex_opt prefix '.' with
         | None -> None
         | Some i -> search (String.sub prefix 0 i))
    in
    search current
  | name :: last_mod :: _ ->
    (match Hashtbl.find_opt t.by_tail (last_mod, name) with
     | Some fq -> Hashtbl.find_opt t.by_fq fq
     | None -> None)
