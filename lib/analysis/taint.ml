(* Rule R7 `secret-taint`: interprocedural forward taint from secret
   sources to the surfaces where a secret must never arrive.

   Sources (facts, not just names):
   - DRBG outputs ([Drbg.bytes], [Drbg.uint64_string]) — every secret
     in this system is ultimately drawn from a seeded DRBG;
   - any [val] annotated [(* lint: secret *)] in its [.mli]
     (EA msk derivations, VSS dealing, ...);
   - any record field annotated [(* lint: secret *)] in a [.mli]
     (trustee share fields of [Ea.setup]'s output, share payloads);
   - the R5 name heuristic, kept as a fallback: identifiers and fields
     named [sk]/[witness]/[nonce]/[msk]/[seed]/[secret] (or suffixed).

   Sinks:
   - the variable-time group surface ([Rules.vartime_callees] — R5's
     sink set, now reached by value flow instead of by name);
   - wire encoders ([Dd_codec.Wire.put_*]);
   - polymorphic / early-exit comparison ([=], [compare],
     [String.equal], ... — R1's operator set, taint-directed);
   - formatted output ([Printf.printf], [Format.asprintf], ...).

   Declassification: a [val] annotated [(* lint: public *)] in its
   [.mli] states that its *result* is public even when its inputs are
   secret — one-way functions ([Sha256.digest], [Hmac.mac]),
   ciphertext ([Aes128]), and computing in the exponent
   ([Curve.mul]: a public key or Pedersen commitment does not reveal
   its scalar under DL). Their results carry no taint; their bodies
   are still analyzed.

   Propagation is {!Dataflow} (let/pattern/aggregate flow) plus
   per-function summaries over the {!Callgraph}: for each function,
   which parameter taints the result, whether the result is tainted
   unconditionally, and which parameter reaches which sink
   (transitively). Summaries are iterated to a fixpoint, then a
   reporting pass walks each lib/ file top to bottom. *)

open Parsetree
module F = Findings

let rule_name = "secret-taint"
let short = "no secret-tainted value may reach vartime/codec/compare/format sinks"

(* findings are reported where the sink is; only lib/ is in scope *)
let scope path = Rules.under [ "lib" ] path

(* --- facts -------------------------------------------------------------- *)

type facts = {
  source_funs : (string, string) Hashtbl.t;   (* "Drbg.bytes" -> description *)
  secret_fields : (string, string) Hashtbl.t; (* field label -> description *)
  public_funs : (string, unit) Hashtbl.t;     (* declassified "Sha256.digest" *)
}

let builtin_sources =
  [ ("Drbg.bytes", "DRBG output"); ("Drbg.uint64_string", "DRBG output") ]

(* --- .mli annotation scan ----------------------------------------------- *)

(* [(* lint: secret *)] / [(* lint: public *)] in an interface declare
   the next (or same-line) [val x] or record field [x : t] as a taint
   source / a declassified result. The scan is textual, like
   [Suppress]: comments never reach the parsetree. *)

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let find_sub s sub start =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then -1
    else if String.sub s i m = sub then i
    else go (i + 1)
  in
  go start

(* Token scan from [pos]: skips whitespace and (non-nested) comments,
   reads up to [limit] word tokens plus the first non-word punctuation
   after each, e.g. ["val"; "bytes"] or ["data"; ":"]. *)
let tokens_from s pos limit =
  let n = String.length s in
  let rec skip i =
    if i >= n then i
    else if s.[i] = ' ' || s.[i] = '\t' || s.[i] = '\n' || s.[i] = '\r' then
      skip (i + 1)
    else if i + 1 < n && s.[i] = '(' && s.[i + 1] = '*' then begin
      match find_sub s "*)" (i + 2) with -1 -> n | j -> skip (j + 2)
    end
    else i
  in
  let rec go i k acc =
    if k = 0 then List.rev acc
    else
      let i = skip i in
      if i >= n then List.rev acc
      else if is_word_char s.[i] then begin
        let j = ref i in
        while !j < n && is_word_char s.[!j] do incr j done;
        go !j (k - 1) (String.sub s i (!j - i) :: acc)
      end
      else go (i + 1) (k - 1) (String.sub s i 1 :: acc)
  in
  go pos (limit * 2) []

type decl = Val of string | Field of string

(* What declaration does the marker at [pos] annotate? Same-line-before
   ([data : string; (* lint: secret *)]) wins over forward scan. *)
let classify_at source pos after_comment =
  let line_start =
    match String.rindex_from_opt source pos '\n' with
    | Some i -> i + 1
    | None -> 0
  in
  let comment_open =
    let rec back i = if i < line_start then line_start
      else if i + 1 < String.length source && source.[i] = '(' && source.[i + 1] = '*'
      then i else back (i - 1)
    in
    back pos
  in
  let before = String.sub source line_start (max 0 (comment_open - line_start)) in
  let of_tokens toks =
    match toks with
    | "val" :: name :: _ when is_word_char name.[0] -> Some (Val name)
    | "mutable" :: name :: ":" :: _ -> Some (Field name)
    | name :: ":" :: _ when is_word_char name.[0] && name <> "val" ->
      Some (Field name)
    | _ -> None
  in
  match of_tokens (tokens_from before 0 4) with
  | Some d -> Some d
  | None -> of_tokens (tokens_from source after_comment 4)

let scan_interface ~modname source =
  let scan_marker marker k acc0 =
    let rec go pos acc =
      match find_sub source marker pos with
      | -1 -> acc
      | i ->
        let after =
          match find_sub source "*)" i with
          | -1 -> String.length source
          | j -> j + 2
        in
        let acc =
          match classify_at source i after with
          | Some d -> k d :: acc
          | None -> acc
        in
        go (i + String.length marker) acc
    in
    go 0 acc0
  in
  let secrets = scan_marker "lint: secret" (fun d -> (`Secret, d)) [] in
  let publics = scan_marker "lint: public" (fun d -> (`Public, d)) [] in
  List.map
    (fun (kind, d) ->
       match d with
       | Val name -> (kind, `Val (modname ^ "." ^ name))
       | Field name -> (kind, `Field name))
    (secrets @ publics)

let facts_of_interfaces interfaces =
  let f =
    { source_funs = Hashtbl.create 16;
      secret_fields = Hashtbl.create 16;
      public_funs = Hashtbl.create 16 }
  in
  List.iter (fun (k, d) -> Hashtbl.replace f.source_funs k d) builtin_sources;
  List.iter
    (fun (path, source) ->
       let modname = Callgraph.module_of_path path in
       List.iter
         (function
           | `Secret, `Val v ->
             Hashtbl.replace f.source_funs v (v ^ " (declared secret)")
           | `Secret, `Field fl ->
             Hashtbl.replace f.secret_fields fl
               ("field `" ^ fl ^ "` (declared secret)")
           | `Public, `Val v -> Hashtbl.replace f.public_funs v ()
           | `Public, `Field _ -> ())
         (scan_interface ~modname source))
    interfaces;
  f

(* --- sinks -------------------------------------------------------------- *)

type sink = { sink_desc : string; remedy : string }

let wire_encoders =
  [ "put_bytes"; "put_varint"; "put_bool"; "put_list"; "put_array"; "put_option" ]

let format_sinks =
  [ "Printf.printf"; "Printf.eprintf"; "Format.printf"; "Format.eprintf";
    "Format.asprintf"; "print_string"; "print_endline"; "print_bytes";
    "prerr_string"; "prerr_endline" ]

let sink_of lid =
  let dotted = String.concat "." (Rules.flatten lid) in
  let last = Rules.last_component lid in
  if List.mem last Rules.vartime_callees then
    Some
      { sink_desc = "variable-time `" ^ dotted ^ "`";
        remedy =
          "the vartime surface is public-data only; secret scalars use the \
           constant-time Curve.mul / comb-table paths" }
  else
    match Rules.banned_comparison lid with
    | Some op ->
      Some
        { sink_desc = "early-exit comparison `" ^ op ^ "`";
          remedy = "compare secrets with Dd_crypto.Ct.equal" }
    | None ->
      (match List.rev (Rules.flatten lid) with
       | name :: "Wire" :: _ when List.mem name wire_encoders ->
         Some
           { sink_desc = "wire encoder `Wire." ^ name ^ "`";
             remedy =
               "secret material must not be serialized; send a share, a \
                ciphertext or a commitment instead" }
       | _ ->
         if List.exists (Rules.matches_name lid) format_sinks then
           Some
             { sink_desc = "formatted output `" ^ dotted ^ "`";
               remedy = "secret material must not reach printed/logged output" }
         else None)

(* --- summaries ---------------------------------------------------------- *)

type summary = {
  result_from : bool array;        (* parameter i taints the result *)
  result_always : bool;            (* result tainted regardless of arguments *)
  param_sinks : (int * string) list;  (* parameter i reaches this sink *)
}

let summary_equal a b =
  a.result_from = b.result_from && a.result_always = b.result_always
  && a.param_sinks = b.param_sinks

type ctx = {
  facts : facts;
  graph : Callgraph.t;
  summaries : (string, summary) Hashtbl.t;
  mutable findings : F.t list;
}

(* Parameter-provenance markers, threaded through [Dataflow.taint]'s
   origin string with a reserved prefix. *)
let marker i = { Dataflow.origin = "\000" ^ string_of_int i; origin_loc = Location.none }

let marker_index (t : Dataflow.taint) =
  if String.length t.Dataflow.origin > 1 && t.Dataflow.origin.[0] = '\000' then
    int_of_string_opt (String.sub t.Dataflow.origin 1 (String.length t.Dataflow.origin - 1))
  else None

(* Match call-site arguments to declared parameters: positional
   arguments consume [Nolabel] parameters in order, labelled arguments
   match by name. Returns [(param_index, taint) list]. *)
let match_args (params : (Asttypes.arg_label * pattern) list) args =
  let indexed = List.mapi (fun i (l, _) -> (i, l)) params in
  let nolabels = List.filter (fun (_, l) -> l = Asttypes.Nolabel) indexed in
  let next_nolabel = ref nolabels in
  List.filter_map
    (fun (label, _arg, taint) ->
       match label with
       | Asttypes.Nolabel ->
         (match !next_nolabel with
          | (i, _) :: rest ->
            next_nolabel := rest;
            Some (i, taint)
          | [] -> None)
       | Asttypes.Labelled l | Asttypes.Optional l ->
         List.find_map
           (fun (i, pl) ->
              match pl with
              | Asttypes.Labelled l' | Asttypes.Optional l' when l = l' -> Some (i, taint)
              | _ -> None)
           indexed)
    args

(* Taint survives these stdlib calls (value-preserving plumbing). *)
let pass_through =
  [ "^"; "fst"; "snd"; "Fun.id";
    "Bytes.sub"; "Bytes.copy"; "Bytes.cat"; "Bytes.to_string"; "Bytes.of_string";
    "Bytes.unsafe_to_string"; "Bytes.unsafe_of_string"; "Bytes.get";
    "String.sub"; "String.concat"; "String.cat"; "String.get"; "String.init";
    "Array.get"; "Array.sub"; "Array.copy"; "Array.append"; "Array.concat";
    "Array.to_list"; "Array.of_list"; "Array.map"; "Array.mapi";
    "List.hd"; "List.nth"; "List.rev"; "List.append"; "List.concat";
    "List.map"; "List.mapi"; "List.filter"; "List.to_seq";
    "Option.get"; "Option.value"; "Option.some" ]

let secret_named n = Rules.vartime_secret_name n

(* Qualify a callee against the current module for fact lookups:
   [Lident f] inside Ea -> "Ea.f"; [M.f] (however deep) -> "M.f". *)
let fact_key ~current_module lid =
  match List.rev (Rules.flatten lid) with
  | [] -> ""
  | [ f ] -> current_module ^ "." ^ f
  | f :: m :: _ -> m ^ "." ^ f

type mode =
  | Summarize of (int * string) list ref  (* collect param -> sink hits *)
  | Report of string                      (* reporting pass over this file *)

(* The limb-level arithmetic kernels are not constant-time at
   comparison granularity — operand-dependent limb compares are
   inherent to the [Nat] representation and documented in
   lib/bignum/nat.ml. Mirroring R1's scope, files under lib/bignum and
   lib/group are exempt from the *comparison* sink: without this,
   every secret scalar entering [Modular.mul] would transitively
   "reach" the [<>] inside the limb loops. The vartime, wire-encoder
   and format sinks still apply inside the kernels. *)
let comparison_exempt path =
  Rules.under [ "lib"; "bignum" ] path || Rules.under [ "lib"; "group" ] path

let hooks_for ctx ~current_module ~cmp_exempt ~mode =
  let report ~loc fmt =
    Printf.ksprintf
      (fun msg ->
         match mode with
         | Report file ->
           ctx.findings <- F.make ~rule:rule_name ~file ~loc msg :: ctx.findings
         | Summarize _ -> ())
      fmt
  in
  let describe (t : Dataflow.taint) =
    match marker_index t with
    | Some _ -> "parameter"   (* not printed: markers never reach Report mode *)
    | None -> t.Dataflow.origin
  in
  let record_param_sink t sink_desc =
    match mode, marker_index t with
    | Summarize acc, Some i ->
      if not (List.mem (i, sink_desc) !acc) then acc := (i, sink_desc) :: !acc
    | _ -> ()
  in
  let ident lid loc =
    let key = fact_key ~current_module lid in
    match Hashtbl.find_opt ctx.facts.source_funs key with
    | Some desc -> Some { Dataflow.origin = desc; origin_loc = loc }
    | None ->
      let last = Rules.last_component lid in
      if secret_named last then
        Some { Dataflow.origin = "`" ^ last ^ "` (secret-named)"; origin_loc = loc }
      else None
  in
  let field lid loc =
    let last = Rules.last_component lid in
    match Hashtbl.find_opt ctx.facts.secret_fields last with
    | Some desc -> Some { Dataflow.origin = desc; origin_loc = loc }
    | None ->
      if secret_named last then
        Some { Dataflow.origin = "field `" ^ last ^ "` (secret-named)"; origin_loc = loc }
      else None
  in
  let call ~eval:_ ~env:_ ~callee ~loc ~args =
    let tainted_args = List.filter_map (fun (_, _, t) -> t) args in
    let sink =
      match sink_of callee with
      | Some _ when cmp_exempt && Rules.banned_comparison callee <> None -> None
      | s -> s
    in
    (* 1. direct sinks *)
    match sink with
    | Some { sink_desc; remedy } ->
      List.iter
        (fun t ->
           record_param_sink t sink_desc;
           if marker_index t = None then
             report ~loc "secret-tainted value (%s) reaches %s; %s"
               (describe t) sink_desc remedy)
        tainted_args;
      None
    | None -> begin
      (* 2. known source functions / annotated vals *)
      let key = fact_key ~current_module callee in
      match Hashtbl.find_opt ctx.facts.source_funs key with
      | Some desc -> Some { Dataflow.origin = desc; origin_loc = loc }
      | None ->
        (* 3. in-program callee: apply its summary *)
        (match Callgraph.resolve ctx.graph ~current:current_module callee with
         | Some fn ->
           let s =
             match Hashtbl.find_opt ctx.summaries fn.Callgraph.fq with
             | Some s -> s
             | None ->
               { result_from = [||]; result_always = false; param_sinks = [] }
           in
           let mapped = match_args fn.Callgraph.params args in
           List.iter
             (fun (i, taint) ->
                match taint with
                | None -> ()
                | Some t ->
                  List.iter
                    (fun (j, sink_desc) ->
                       if i = j then begin
                         record_param_sink t sink_desc;
                         if marker_index t = None then
                           report ~loc
                             "secret-tainted value (%s) flows via `%s` into %s"
                             (describe t) fn.Callgraph.fq sink_desc
                       end)
                    s.param_sinks)
             mapped;
           if Hashtbl.mem ctx.facts.public_funs key
           || Hashtbl.mem ctx.facts.public_funs fn.Callgraph.fq then None
           else if s.result_always then
             Some { Dataflow.origin = "`" ^ fn.Callgraph.fq ^ "` result"; origin_loc = loc }
           else
             List.find_map
               (fun (i, taint) ->
                  if i < Array.length s.result_from && s.result_from.(i) then taint
                  else None)
               mapped
         | None ->
           (* 4. unknown callee: declassified, pass-through, or kills taint *)
           if Hashtbl.mem ctx.facts.public_funs key then None
           else if List.exists (Rules.matches_name callee) pass_through then
             List.find_map (fun (_, _, t) -> t) args
           else None)
    end
  in
  { Dataflow.ident; field; call }

(* --- summary computation and fixpoint ----------------------------------- *)

let bind_params hooks params taint_for =
  List.fold_left
    (fun (i, env) (_, pat) ->
       let env = Dataflow.bind_pattern hooks env pat (taint_for i) ~rhs:None in
       (i + 1, env))
    (0, Dataflow.Env.empty) params
  |> snd

let compute_summary ctx fn =
  let current_module =
    match String.rindex_opt fn.Callgraph.fq '.' with
    | Some i -> String.sub fn.Callgraph.fq 0 i
    | None -> fn.Callgraph.unit_module
  in
  let n = List.length fn.Callgraph.params in
  let sinks = ref [] in
  let cmp_exempt =
    comparison_exempt fn.Callgraph.loc.Location.loc_start.Lexing.pos_fname
  in
  let hooks = hooks_for ctx ~current_module ~cmp_exempt ~mode:(Summarize sinks) in
  (* base pass: no parameter markers -> unconditional result taint *)
  let base = Dataflow.eval hooks (bind_params hooks fn.Callgraph.params (fun _ -> None))
      fn.Callgraph.body in
  let result_always =
    match base with Some t -> marker_index t = None | None -> false
  in
  let result_from = Array.make n false in
  for i = 0 to n - 1 do
    let env =
      bind_params hooks fn.Callgraph.params (fun j -> if i = j then Some (marker i) else None)
    in
    match Dataflow.eval hooks env fn.Callgraph.body with
    | Some t when marker_index t = Some i -> result_from.(i) <- true
    | _ -> ()
  done;
  { result_from; result_always;
    param_sinks = List.sort_uniq compare !sinks }

let fixpoint ctx =
  let changed = ref true and rounds = ref 0 in
  while !changed && !rounds < 12 do
    changed := false;
    incr rounds;
    List.iter
      (fun fn ->
         let s = compute_summary ctx fn in
         match Hashtbl.find_opt ctx.summaries fn.Callgraph.fq with
         | Some old when summary_equal old s -> ()
         | _ ->
           Hashtbl.replace ctx.summaries fn.Callgraph.fq s;
           changed := true)
      (Callgraph.functions ctx.graph)
  done

(* --- reporting pass ----------------------------------------------------- *)

let rec report_structure ctx ~file ~current_module genv items =
  let hooks =
    hooks_for ctx ~current_module ~cmp_exempt:(comparison_exempt file)
      ~mode:(Report file)
  in
  List.fold_left
    (fun genv item ->
       match item.pstr_desc with
       | Pstr_value (_, vbs) ->
         List.fold_left
           (fun genv vb ->
              (* functions are walked by [eval]'s [Pexp_fun] case with
                 the module-global taint captured; plain values extend
                 the module-global environment *)
              let t = Dataflow.eval hooks genv vb.pvb_expr in
              Dataflow.bind_pattern hooks genv vb.pvb_pat t ~rhs:(Some vb.pvb_expr))
           genv vbs
       | Pstr_eval (e, _) ->
         ignore (Dataflow.eval hooks genv e);
         genv
       | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } ->
         report_module_expr ctx ~file ~current_module:(current_module ^ "." ^ name)
           genv pmb_expr;
         genv
       | Pstr_recmodule mbs ->
         List.iter
           (fun mb ->
              match mb.pmb_name.Asttypes.txt with
              | Some name ->
                report_module_expr ctx ~file
                  ~current_module:(current_module ^ "." ^ name) genv mb.pmb_expr
              | None -> ())
           mbs;
         genv
       | _ -> genv)
    genv items

and report_module_expr ctx ~file ~current_module genv me =
  match me.pmod_desc with
  | Pmod_structure items ->
    ignore (report_structure ctx ~file ~current_module genv items)
  | Pmod_functor (_, body) -> report_module_expr ctx ~file ~current_module genv body
  | Pmod_constraint (me, _) -> report_module_expr ctx ~file ~current_module genv me
  | _ -> ()

(* --- entry point -------------------------------------------------------- *)

let run ~files ~interfaces =
  let facts = facts_of_interfaces interfaces in
  let graph = Callgraph.build files in
  let ctx = { facts; graph; summaries = Hashtbl.create 256; findings = [] } in
  fixpoint ctx;
  List.iter
    (fun (path, structure) ->
       if scope path then begin
         let m = Callgraph.module_of_path path in
         ignore
           (report_structure ctx ~file:path ~current_module:m Dataflow.Env.empty
              structure)
       end)
    files;
  F.sort ctx.findings
