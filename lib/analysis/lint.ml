let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

let parse ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception exn ->
    let loc, msg =
      match Location.error_of_exn exn with
      | Some (`Ok e) ->
        (e.Location.main.Location.loc, Format.asprintf "%t" e.Location.main.Location.txt)
      | _ -> (Location.in_file file, Printexc.to_string exn)
    in
    Error (loc, msg)

let lint_string ~rules ~file ~source =
  match parse ~file source with
  | Error (loc, msg) ->
    [ Findings.make ~rule:"parse" ~file ~loc ("syntax error: " ^ msg) ]
  | Ok structure ->
    let allows = Suppress.scan source in
    rules
    |> List.concat_map (fun (r : Rules.t) ->
        if r.Rules.applies file then r.Rules.check ~file structure else [])
    |> List.filter (fun (f : Findings.t) ->
        not (Suppress.allowed allows ~rule:f.Findings.rule ~line:f.Findings.line))
    |> Findings.sort

let lint_file ~rules path =
  match read_file path with
  | None ->
    [ Findings.make ~rule:"parse" ~file:path ~loc:(Location.in_file path)
        "cannot read file" ]
  | Some source -> lint_string ~rules ~file:path ~source

let skip_dir name = name = "_build" || (String.length name > 0 && name.[0] = '.')

let ml_files roots =
  let acc = ref [] in
  let rec walk path =
    if Sys.is_directory path then begin
      if not (skip_dir (Filename.basename path)) || List.mem path roots then
        Sys.readdir path |> Array.to_list |> List.sort compare
        |> List.iter (fun entry -> walk (Filename.concat path entry))
    end
    else if Filename.check_suffix path ".ml" then acc := path :: !acc
  in
  List.iter (fun root -> if Sys.file_exists root then walk root) roots;
  List.sort compare !acc

let harvest_wire_constructors ~source =
  match parse ~file:"<harvest>" source with
  | Error _ -> []
  | Ok structure ->
    let acc = ref [] in
    let type_decl (td : Parsetree.type_declaration) =
      if List.mem td.Parsetree.ptype_name.Asttypes.txt Rules.wire_type_names then
        match td.Parsetree.ptype_kind with
        | Parsetree.Ptype_variant constructors ->
          List.iter
            (fun (c : Parsetree.constructor_declaration) ->
               acc := c.Parsetree.pcd_name.Asttypes.txt :: !acc)
            constructors
        | _ -> ()
    in
    let it =
      { Ast_iterator.default_iterator with
        type_declaration = (fun it td -> type_decl td;
                             Ast_iterator.default_iterator.type_declaration it td) }
    in
    it.structure it structure;
    List.rev !acc
