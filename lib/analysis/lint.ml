let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

let parse ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception exn ->
    let loc, msg =
      match Location.error_of_exn exn with
      | Some (`Ok e) ->
        (e.Location.main.Location.loc, Format.asprintf "%t" e.Location.main.Location.txt)
      | _ -> (Location.in_file file, Printexc.to_string exn)
    in
    Error (loc, msg)

(* Rule names the suppression scanner accepts in allow comments. *)
let known_rules rules =
  List.map (fun (r : Rules.t) -> r.Rules.name) rules
  @ [ Taint.rule_name; "bare-allow"; "parse" ]

let loc_at ~file ~line =
  let pos = { Lexing.pos_fname = file; pos_lnum = line; pos_bol = 0; pos_cnum = 0 } in
  { Location.loc_start = pos; loc_end = pos; loc_ghost = true }

let bare_allow_findings ~file allows =
  Suppress.unjustified allows
  |> List.map (fun (line, rules) ->
      let what =
        match rules with
        | [] -> "it names no known rule"
        | rs -> "no justification after " ^ String.concat ", " rs
      in
      Findings.make ~rule:"bare-allow" ~file ~loc:(loc_at ~file ~line)
        (Printf.sprintf
           "unauditable suppression (%s); write (* lint: allow <rule> <why> *)"
           what))

let per_file_findings ~rules ~file structure =
  List.concat_map
    (fun (r : Rules.t) ->
       if r.Rules.applies file then r.Rules.check ~file structure else [])
    rules

let[@warning "-16"] lint_string ~rules ?(interfaces = []) ~file ~source =
  match parse ~file source with
  | Error (loc, msg) ->
    [ Findings.make ~rule:"parse" ~file ~loc ("syntax error: " ^ msg) ]
  | Ok structure ->
    let allows = Suppress.scan ~known:(known_rules rules) source in
    let checked =
      per_file_findings ~rules ~file structure
      @ Taint.run ~files:[ (file, structure) ] ~interfaces
    in
    (checked
     |> List.filter (fun (f : Findings.t) ->
         not (Suppress.allowed allows ~rule:f.Findings.rule ~line:f.Findings.line)))
    @ bare_allow_findings ~file allows
    |> Findings.fingerprint_all

let sibling_interface path =
  let mli = Filename.remove_extension path ^ ".mli" in
  match read_file mli with Some s -> Some (mli, s) | None -> None

let lint_file ~rules path =
  match read_file path with
  | None ->
    [ Findings.make ~rule:"parse" ~file:path ~loc:(Location.in_file path)
        "cannot read file" ]
  | Some source ->
    lint_string ~rules
      ~interfaces:(Option.to_list (sibling_interface path))
      ~file:path ~source

(* Whole-program lint: every file is parsed once, per-file rules run on
   each, then the interprocedural taint engine sees all of them at once
   (summaries cross file boundaries). Suppressions and bare-allow
   findings are per-file; fingerprints are assigned over the combined,
   sorted result. [interfaces] augments the automatically discovered
   sibling [.mli] sources (used by tests to inject annotations). *)
let lint_program ~rules ?(interfaces = []) paths =
  let parsed, broken =
    List.fold_left
      (fun (ok, bad) path ->
         match read_file path with
         | None ->
           ( ok,
             Findings.make ~rule:"parse" ~file:path ~loc:(Location.in_file path)
               "cannot read file"
             :: bad )
         | Some source ->
           (match parse ~file:path source with
            | Error (loc, msg) ->
              ( ok,
                Findings.make ~rule:"parse" ~file:path ~loc ("syntax error: " ^ msg)
                :: bad )
            | Ok structure -> ((path, source, structure) :: ok, bad)))
      ([], []) paths
  in
  let parsed = List.rev parsed in
  let interfaces =
    interfaces
    @ List.filter_map (fun (path, _, _) -> sibling_interface path) parsed
  in
  let known = known_rules rules in
  let allows_by_file =
    List.map (fun (path, source, _) -> (path, Suppress.scan ~known source)) parsed
  in
  let checked =
    List.concat_map
      (fun (path, _, structure) -> per_file_findings ~rules ~file:path structure)
      parsed
    @ Taint.run
        ~files:(List.map (fun (p, _, s) -> (p, s)) parsed)
        ~interfaces
  in
  let suppressed (f : Findings.t) =
    match List.assoc_opt f.Findings.file allows_by_file with
    | Some allows ->
      Suppress.allowed allows ~rule:f.Findings.rule ~line:f.Findings.line
    | None -> false
  in
  broken
  @ List.filter (fun f -> not (suppressed f)) checked
  @ List.concat_map
      (fun (path, allows) -> bare_allow_findings ~file:path allows)
      allows_by_file
  |> Findings.fingerprint_all

let skip_dir name = name = "_build" || (String.length name > 0 && name.[0] = '.')

let ml_files roots =
  let acc = ref [] in
  let rec walk path =
    if Sys.is_directory path then begin
      if not (skip_dir (Filename.basename path)) || List.mem path roots then
        Sys.readdir path |> Array.to_list |> List.sort compare
        |> List.iter (fun entry -> walk (Filename.concat path entry))
    end
    else if Filename.check_suffix path ".ml" then acc := path :: !acc
  in
  List.iter (fun root -> if Sys.file_exists root then walk root) roots;
  List.sort compare !acc

let harvest_wire_constructors ~source =
  match parse ~file:"<harvest>" source with
  | Error _ -> []
  | Ok structure ->
    let acc = ref [] in
    let type_decl (td : Parsetree.type_declaration) =
      if List.mem td.Parsetree.ptype_name.Asttypes.txt Rules.wire_type_names then
        match td.Parsetree.ptype_kind with
        | Parsetree.Ptype_variant constructors ->
          List.iter
            (fun (c : Parsetree.constructor_declaration) ->
               acc := c.Parsetree.pcd_name.Asttypes.txt :: !acc)
            constructors
        | _ -> ()
    in
    let it =
      { Ast_iterator.default_iterator with
        type_declaration = (fun it td -> type_decl td;
                             Ast_iterator.default_iterator.type_declaration it td) }
    in
    it.structure it structure;
    List.rev !acc
