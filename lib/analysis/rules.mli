(** The rule registry. Each rule is an [Ast_iterator]-based pass over
    one file's parsetree, scoped to the directories where its invariant
    applies. docs/INVARIANTS.md states each rule's threat-model
    rationale. *)

type t = {
  name : string;
  short : string;                       (** one-line description for --list-rules *)
  applies : string -> bool;             (** does this rule cover the given path? *)
  check : file:string -> Parsetree.structure -> Findings.t list;
}

(** R1: no early-exit equality on secret-bearing values
    (vote codes, receipts, MACs, keys, shares) — require [Dd_crypto.Ct.equal].
    Scope: lib/crypto, lib/core, lib/vss. *)
val ct_equality : t

(** R2: sans-IO hygiene — no ambient randomness, wall-clock time, or
    console IO outside the simulator; nondeterminism flows through the
    injected [Drbg] / [now]. Scope: lib/** except lib/sim. *)
val sans_io : t

(** R3: Byzantine-input exception hygiene — no raising lookup/partial
    APIs ([Hashtbl.find], [List.find], [Option.get], [failwith],
    [assert], ...) in node code that handles adversarial messages;
    use [_opt] variants with explicit drop/reject.
    Scope: lib/core, lib/consensus. *)
val exception_hygiene : t

(** R4: wire-message exhaustiveness — no wildcard arms in matches over
    the protocol message types, so adding a variant forces every
    dispatch site to decide. Scope: all linted files. *)
val wire_exhaustive : constructors:string list -> t

(** Constructors of [Messages.vc_msg] / [Messages.bb_msg] as of this
    writing; the driver re-harvests them from [messages.ml] so the rule
    tracks the real type. *)
val default_wire_constructors : string list

(** Names of the type declarations whose constructors R4 protects. *)
val wire_type_names : string list

(** R5: variable-time group operations take public data only —
    secret-named values must not reach [mul_vartime]/[mul2]/[msm*]/
    [verify_batch*]. Scope: lib/**. *)
val vartime_public_only : t

(** R6: no top-level mutable state ([ref]/[Array.make]/[Bytes.create]/
    [Hashtbl.create]/...) or [lazy] in the domain-shared arithmetic
    stack; use [Domain.DLS] for scratch and [Dd_parallel.Once] /
    [Atomic] for compute-once caches. Scope: lib/bignum, lib/crypto,
    lib/group, lib/sig. *)
val domain_safe_state : t

(** R8: closures handed to [Dd_parallel.Pool.parallel_for/map/reduce]
    run on every domain concurrently — they must not mutate captured
    state (refs, Hashtbl, Buffer, Queue, ...) or touch top-level
    mutable bindings. The single sanctioned captured write is a
    disjoint index-addressed slot whose index derives from a
    closure-bound name. Scope: all linted files. *)
val domain_escape : t

val all : ?wire_constructors:string list -> unit -> t list

(** {2 Shared syntactic helpers} — used by the interprocedural taint
    engine ({!Taint}), kept here so R5/R7 agree on the sink surface. *)

(** Is [path] under one of the given top-level directories
    (["lib/crypto"], ...)? Tolerant of [../] prefixes and absolute
    paths (dune runs rules from [_build]). *)
val under : string list -> string -> bool

val flatten : Longident.t -> string list
val last_component : Longident.t -> string

(** [matches_name lid "Hashtbl.find"] — compares the flattened
    longident against the dotted name, ignoring a [Stdlib.] prefix. *)
val matches_name : Longident.t -> string -> bool

(** Callees of the variable-time group surface (R5/R7 sinks). *)
val vartime_callees : string list

(** Does this identifier look secret-bearing by name (R5 heuristic)? *)
val vartime_secret_name : string -> bool

(** The operator name when this callee is a banned early-exit
    comparison ([=], [compare], [String.equal], ...). *)
val banned_comparison : Longident.t -> string option
