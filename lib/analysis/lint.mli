(** Parsing and running the rule set over files and directory trees. *)

(** Lint in-memory source. [file] selects which rules apply (path
    scoping) and is reported in findings; suppression comments in
    [source] are honored and unjustified ones become ["bare-allow"]
    findings. The interprocedural taint rule (R7) runs over the single
    file; [interfaces] supplies [(path, source)] pairs scanned for
    [(* lint: secret *)] / [(* lint: public *)] annotations. A syntax
    error yields a single ["parse"] finding rather than an exception.
    Findings come back sorted and fingerprinted. *)
val lint_string :
  rules:Rules.t list ->
  ?interfaces:(string * string) list ->
  file:string -> source:string -> Findings.t list

val lint_file : rules:Rules.t list -> string -> Findings.t list

(** Whole-program lint over the given [.ml] paths: per-file rules on
    each, one interprocedural taint analysis across all of them
    (summaries cross file boundaries), suppression filtering,
    bare-allow findings, fingerprints. Sibling [.mli] files are
    discovered automatically; [interfaces] adds more (tests use this
    to inject annotated interfaces). *)
val lint_program :
  rules:Rules.t list ->
  ?interfaces:(string * string) list ->
  string list -> Findings.t list

(** All [.ml] files under the given files/directories (recursively),
    sorted; [_build] and dot-directories are skipped. *)
val ml_files : string list -> string list

(** Constructors of the wire-message types ([Rules.wire_type_names])
    declared in [source], used to keep R4 in sync with [messages.ml].
    Empty if the source declares none (or does not parse). *)
val harvest_wire_constructors : source:string -> string list

(** Read a file, or [None] if unreadable. *)
val read_file : string -> string option
