(* Forward taint propagation over one expression tree.

   This is the intraprocedural half of the dataflow framework: a
   syntax-directed evaluator that threads an environment of tainted
   local names through let-bindings, pattern destructuring, tuples,
   records, constructors and control flow, and asks a set of client
   [hooks] about everything it cannot decide syntactically — whether
   an identifier or record field is a taint source, and what a call
   does (source? sink? summary?). The client ({!Taint} for rule R7)
   owns sources, sinks, per-function summaries and finding reports;
   this module owns only the propagation rules.

   Approximations, by design (documented in docs/INVARIANTS.md §R7):
   - a tuple/record/array is tainted as a whole if any component is;
     destructuring a tainted aggregate taints every bound name
     (except tuple-literal-into-tuple-pattern, which is componentwise);
   - closures are walked at their definition site with the captured
     environment (so a sink inside [fun x -> ... captured_secret ...]
     is found) but a closure *value* itself carries no taint;
   - taint does not survive the heap: writing a secret into a mutable
     cell and reading it back elsewhere is invisible. *)

open Parsetree

type taint = {
  origin : string;        (* human description: "sk (secret-named)" ... *)
  origin_loc : Location.t;
}

module Env = Map.Make (String)

type env = taint Env.t

type hooks = {
  ident : Longident.t -> Location.t -> taint option;
      (* is this (free) identifier a source? *)
  field : Longident.t -> Location.t -> taint option;
      (* is this record field (by label) a declared-secret source? *)
  call :
    eval:(env -> expression -> taint option) ->
    env:env ->
    callee:Longident.t ->
    loc:Location.t ->
    args:(Asttypes.arg_label * expression * taint option) list ->
    taint option;
      (* decide the result taint of a call whose argument taints are
         already computed; sinks are reported from inside this hook *)
}

let join a b = match a with Some _ -> a | None -> b

let pattern_vars p =
  let acc = ref [] in
  let it =
    { Ast_iterator.default_iterator with
      pat =
        (fun it p ->
           (match p.ppat_desc with
            | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
              acc := txt :: !acc
            | _ -> ());
           Ast_iterator.default_iterator.pat it p) }
  in
  it.pat it p;
  !acc

(* Remove every name [pat] binds: rebinding always shadows whatever
   taint the name carried before. *)
let shadow env pat =
  List.fold_left (fun env v -> Env.remove v env) env (pattern_vars pat)

(* [bind hooks env pat taint ~rhs] extends [env] with the names bound
   by [pat]. [taint] is the (aggregate) taint of the matched value;
   [rhs] is the syntactic right-hand side when there is one, enabling
   componentwise tuple binding. Record patterns additionally consult
   [hooks.field] so [let { msk; _ } = setup] taints [msk] when the
   field is a declared secret even if the record itself is not. *)
let rec bind hooks eval_in env pat taint ~rhs =
  let env = shadow env pat in
  match pat.ppat_desc, taint with
  | Ppat_var { txt; _ }, Some t -> Env.add txt t env
  | Ppat_var _, None -> env
  | Ppat_alias (p, { txt; _ }), _ ->
    let env = match taint with Some t -> Env.add txt t env | None -> env in
    bind hooks eval_in env p taint ~rhs
  | Ppat_tuple ps, _ ->
    (match rhs with
     | Some { pexp_desc = Pexp_tuple es; _ } when List.length es = List.length ps ->
       List.fold_left2
         (fun env p e ->
            let t = join taint (eval_in env e) in
            bind hooks eval_in env p t ~rhs:(Some e))
         env ps es
     | _ ->
       List.fold_left (fun env p -> bind hooks eval_in env p taint ~rhs:None) env ps)
  | Ppat_record (fields, _), _ ->
    List.fold_left
      (fun env ({ Asttypes.txt; loc }, p) ->
         let t = join taint (hooks.field txt loc) in
         bind hooks eval_in env p t ~rhs:None)
      env fields
  | Ppat_construct (_, Some (_, p)), _ | Ppat_variant (_, Some p), _
  | Ppat_constraint (p, _), _ | Ppat_open (_, p), _ | Ppat_lazy p, _
  | Ppat_exception p, _ ->
    bind hooks eval_in env p taint ~rhs:None
  | Ppat_or (a, b), _ ->
    let env = bind hooks eval_in env a taint ~rhs:None in
    bind hooks eval_in env b taint ~rhs:None
  | Ppat_array ps, _ ->
    List.fold_left (fun env p -> bind hooks eval_in env p taint ~rhs:None) env ps
  | _, _ -> env

let rec eval hooks env e =
  let eval_in env e = eval hooks env e in
  match e.pexp_desc with
  | Pexp_ident { txt; loc } ->
    (match txt with
     | Longident.Lident name when Env.mem name env -> Some (Env.find name env)
     | _ -> hooks.ident txt loc)
  | Pexp_constant _ | Pexp_unreachable -> None
  | Pexp_let (rf, vbs, body) ->
    let env' =
      List.fold_left
        (fun acc vb ->
           (* recursive bindings are evaluated in the outer env: a
              self-referential taint fixpoint is not worth the cycle *)
           let scrutinee_env = match rf with Asttypes.Recursive -> env | _ -> acc in
           let t = eval hooks scrutinee_env vb.pvb_expr in
           bind hooks (eval_in) acc vb.pvb_pat t ~rhs:(Some vb.pvb_expr))
        env vbs
    in
    eval hooks env' body
  | Pexp_fun (_, default, pat, body) ->
    Option.iter (fun d -> ignore (eval hooks env d)) default;
    (* walk the body with the parameter shadowed: captured taint stays
       visible, so sinks inside local closures are reported here *)
    ignore (eval hooks (shadow env pat) body);
    None
  | Pexp_function cases ->
    List.iter
      (fun c ->
         let env' = bind hooks eval_in env c.pc_lhs None ~rhs:None in
         Option.iter (fun g -> ignore (eval hooks env' g)) c.pc_guard;
         ignore (eval hooks env' c.pc_rhs))
      cases;
    None
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = callee; loc }; _ }, args) ->
    let args =
      List.map (fun (label, a) -> (label, a, eval hooks env a)) args
    in
    hooks.call ~eval:(eval hooks) ~env ~callee ~loc ~args
  | Pexp_apply (f, args) ->
    ignore (eval hooks env f);
    List.iter (fun (_, a) -> ignore (eval hooks env a)) args;
    None
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
    let t = eval hooks env scrut in
    List.fold_left
      (fun acc c ->
         let env' = bind hooks eval_in env c.pc_lhs t ~rhs:(Some scrut) in
         Option.iter (fun g -> ignore (eval hooks env' g)) c.pc_guard;
         join acc (eval hooks env' c.pc_rhs))
      None cases
  | Pexp_tuple es | Pexp_array es ->
    List.fold_left (fun acc e -> join acc (eval hooks env e)) None es
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) ->
    (match arg with Some a -> eval hooks env a | None -> None)
  | Pexp_record (fields, base) ->
    let t =
      List.fold_left (fun acc (_, v) -> join acc (eval hooks env v)) None fields
    in
    (match base with Some b -> join t (eval hooks env b) | None -> t)
  | Pexp_field (r, { txt; loc }) ->
    join (hooks.field txt loc) (eval hooks env r)
  | Pexp_setfield (r, _, v) ->
    ignore (eval hooks env r);
    ignore (eval hooks env v);
    None
  | Pexp_ifthenelse (c, a, b) ->
    ignore (eval hooks env c);
    let t = eval hooks env a in
    (match b with Some b -> join t (eval hooks env b) | None -> t)
  | Pexp_sequence (a, b) ->
    ignore (eval hooks env a);
    eval hooks env b
  | Pexp_while (c, body) ->
    ignore (eval hooks env c);
    ignore (eval hooks env body);
    None
  | Pexp_for (pat, lo, hi, _, body) ->
    ignore (eval hooks env lo);
    ignore (eval hooks env hi);
    ignore (eval hooks (shadow env pat) body);
    None
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_newtype (_, e)
  | Pexp_open (_, e) | Pexp_letmodule (_, _, e) | Pexp_letexception (_, e)
  | Pexp_lazy e ->
    eval hooks env e
  | Pexp_assert e ->
    ignore (eval hooks env e);
    None
  | _ ->
    (* rare forms (objects, letop, packs): walk immediate
       subexpressions for reporting, expose no taint *)
    let it =
      { Ast_iterator.default_iterator with
        expr = (fun _ c -> ignore (eval hooks env c)) }
    in
    Ast_iterator.default_iterator.expr it e;
    None

let bind_pattern hooks env pat taint ~rhs =
  bind hooks (eval hooks) env pat taint ~rhs
