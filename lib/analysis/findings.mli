(** Lint findings: one record per violation, with a source span and a
    baseline-stable fingerprint. *)

type t = {
  rule : string;     (** rule name, e.g. "ct-equality" *)
  file : string;     (** path as given to the linter *)
  line : int;        (** 1-based *)
  col : int;         (** 0-based column of the offending expression *)
  message : string;  (** human explanation, including the suggested fix *)
  fingerprint : string;
      (** 16 hex chars, filled by {!fingerprint_all}; stable across
          unrelated-line insertions (no line/col in the hash) *)
}

val make : rule:string -> file:string -> loc:Location.t -> string -> t

(** Sort by (file, line, col, rule). *)
val sort : t list -> t list

(** Assign fingerprints: hash of (rule, file, message, occurrence
    index within the file). Returns the findings sorted. *)
val fingerprint_all : t list -> t list

(** [file:line:col: [rule] message] — the format editors and CI logs parse. *)
val to_text : t -> string

(** One JSON object; [list_to_json] renders a findings array. *)
val to_json : t -> string

val list_to_json : t list -> string

(** SARIF 2.1.0 log: one run, [rules] is the [(id, shortDescription)]
    table for the tool.driver.rules component, fingerprints are
    emitted under [partialFingerprints."ddemosLint/v1"]. *)
val to_sarif : rules:(string * string) list -> t list -> string
