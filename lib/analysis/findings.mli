(** Lint findings: one record per violation, with a source span. *)

type t = {
  rule : string;     (** rule name, e.g. "ct-equality" *)
  file : string;     (** path as given to the linter *)
  line : int;        (** 1-based *)
  col : int;         (** 0-based column of the offending expression *)
  message : string;  (** human explanation, including the suggested fix *)
}

val make : rule:string -> file:string -> loc:Location.t -> string -> t

(** Sort by (file, line, col, rule). *)
val sort : t list -> t list

(** [file:line:col: [rule] message] — the format editors and CI logs parse. *)
val to_text : t -> string

(** One JSON object; [list_to_json] renders a findings array. *)
val to_json : t -> string

val list_to_json : t list -> string
