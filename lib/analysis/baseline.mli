(** Finding baselines: fingerprint lists that let a new rule land
    without blocking the build on legacy findings. Matching is by the
    stable fingerprints of {!Findings.fingerprint_all}; entries carry
    rule/file/date for human audit and for the nightly expiry check. *)

type entry = {
  fp : string;
  rule : string;
  file : string;
  added : string;  (** YYYY-MM-DD the entry was introduced *)
}

(** Parse baseline file content ('#' comments and blank lines
    ignored). Tolerant: unknown trailing words are skipped. *)
val parse : string -> entry list

(** Render entries back to file content (with the explanatory header);
    [parse (format es)] round-trips. *)
val format : entry list -> string

(** Entries covering the given findings, stamped [added=date]. *)
val of_findings : date:string -> Findings.t list -> entry list

type application = {
  fresh : Findings.t list;      (** not baselined — these fail the build *)
  baselined : Findings.t list;  (** matched — reported but not fatal *)
  stale : entry list;           (** match nothing anymore — remove them *)
}

val apply : entry list -> Findings.t list -> application
