type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
  fingerprint : string;
}

let make ~rule ~file ~loc message =
  let pos = loc.Location.loc_start in
  { rule; file; line = pos.Lexing.pos_lnum; col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    message; fingerprint = "" }

let sort fs =
  List.sort
    (fun a b ->
       match compare a.file b.file with
       | 0 ->
         (match compare (a.line, a.col) (b.line, b.col) with
          | 0 -> compare a.rule b.rule
          | c -> c)
       | c -> c)
    fs

(* Stable fingerprints: hash of (rule, file, message, k) where k is
   the occurrence index of that exact triple within the file, counted
   in source order. Line/column numbers deliberately do not
   participate, so inserting or deleting unrelated lines does not
   invalidate a baseline entry; the occurrence index keeps two
   identical violations in one file distinct. *)
let fingerprint_all fs =
  let fs = sort fs in
  let seen = Hashtbl.create 16 in
  List.map
    (fun f ->
       let key = (f.rule, f.file, f.message) in
       let k = match Hashtbl.find_opt seen key with Some k -> k | None -> 0 in
       Hashtbl.replace seen key (k + 1);
       let digest =
         Digest.to_hex
           (Digest.string
              (Printf.sprintf "%s\x00%s\x00%s\x00%d" f.rule f.file f.message k))
       in
       { f with fingerprint = String.sub digest 0 16 })
    fs

let to_text f = Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

(* Minimal JSON escaping: the fields we emit only ever contain paths,
   rule names and fixed message text, but stay correct on any input. *)
let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf
    {|{"rule":"%s","file":"%s","line":%d,"col":%d,"message":"%s","fingerprint":"%s"}|}
    (escape f.rule) (escape f.file) f.line f.col (escape f.message)
    (escape f.fingerprint)

let list_to_json fs =
  "[" ^ String.concat "," (List.map to_json fs) ^ "]"

(* --- SARIF 2.1.0 -------------------------------------------------------- *)

(* One run, one artifact per distinct file, one result per finding.
   Columns are 1-based in SARIF; our [col] is 0-based. The fingerprint
   goes into [partialFingerprints] under a versioned key, which is
   what SARIF consumers (and our own --baseline) use for matching
   across revisions. *)
let to_sarif ~rules fs =
  let b = Buffer.create 4096 in
  let str s = "\"" ^ escape s ^ "\"" in
  Buffer.add_string b
    "{\"$schema\":\"https://docs.oasis-open.org/sarif/sarif/v2.1.0/os/schemas/sarif-schema-2.1.0.json\",";
  Buffer.add_string b "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{";
  Buffer.add_string b
    "\"name\":\"ddemos-lint\",\"informationUri\":\"docs/INVARIANTS.md\",\"rules\":[";
  List.iteri
    (fun i (name, short) ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b
         (Printf.sprintf
            "{\"id\":%s,\"shortDescription\":{\"text\":%s},\"defaultConfiguration\":{\"level\":\"error\"}}"
            (str name) (str short)))
    rules;
  Buffer.add_string b "]}},\"results\":[";
  List.iteri
    (fun i f ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b
         (Printf.sprintf
            "{\"ruleId\":%s,\"level\":\"error\",\"message\":{\"text\":%s},\
             \"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":%s},\
             \"region\":{\"startLine\":%d,\"startColumn\":%d}}}],\
             \"partialFingerprints\":{\"ddemosLint/v1\":%s}}"
            (str f.rule) (str f.message) (str f.file) f.line (f.col + 1)
            (str f.fingerprint)))
    fs;
  Buffer.add_string b "]}]}";
  Buffer.contents b
