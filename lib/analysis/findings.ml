type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let make ~rule ~file ~loc message =
  let pos = loc.Location.loc_start in
  { rule; file; line = pos.Lexing.pos_lnum; col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    message }

let sort fs =
  List.sort
    (fun a b ->
       match compare a.file b.file with
       | 0 ->
         (match compare (a.line, a.col) (b.line, b.col) with
          | 0 -> compare a.rule b.rule
          | c -> c)
       | c -> c)
    fs

let to_text f = Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

(* Minimal JSON escaping: the fields we emit only ever contain paths,
   rule names and fixed message text, but stay correct on any input. *)
let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf
    {|{"rule":"%s","file":"%s","line":%d,"col":%d,"message":"%s"}|}
    (escape f.rule) (escape f.file) f.line f.col (escape f.message)

let list_to_json fs =
  "[" ^ String.concat "," (List.map to_json fs) ^ "]"
