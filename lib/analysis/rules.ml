open Parsetree

type t = {
  name : string;
  short : string;
  applies : string -> bool;
  check : file:string -> Parsetree.structure -> Findings.t list;
}

(* --- path scoping ------------------------------------------------------- *)

let components path =
  String.split_on_char '/' path |> List.filter (fun c -> c <> "" && c <> ".")

(* [under ["lib"; "core"] "lib/core/vc_node.ml"] is true; absolute and
   _build-relative paths work because we only require the component
   sequence to appear somewhere in the path. *)
let under dirs path =
  let cs = components path in
  let rec prefix = function
    | [], _ -> true
    | _, [] -> false
    | d :: ds, c :: cs -> d = c && prefix (ds, cs)
  in
  let rec scan cs = cs <> [] && (prefix (dirs, cs) || scan (List.tl cs)) in
  scan cs

(* --- longident helpers -------------------------------------------------- *)

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply (l, _) -> flatten l

(* Compare a use site against a dotted name, ignoring an explicit
   [Stdlib.] prefix so [Stdlib.failwith] and [failwith] both match. *)
let matches_name lid dotted =
  let norm = function "Stdlib" :: rest -> rest | l -> l in
  norm (flatten lid) = norm (String.split_on_char '.' dotted)

let last_component lid =
  match List.rev (flatten lid) with c :: _ -> c | [] -> ""

(* Shared driver: build an [Ast_iterator] whose [expr] hook appends
   findings, run it over the structure, return them. *)
let over_expressions ~file f structure =
  let acc = ref [] in
  let it =
    { Ast_iterator.default_iterator with
      expr =
        (fun it e ->
           (match f ~file e with [] -> () | fs -> acc := fs @ !acc);
           Ast_iterator.default_iterator.expr it e) }
  in
  it.structure it structure;
  !acc

let finding ~rule ~file ~loc fmt = Printf.ksprintf (Findings.make ~rule ~file ~loc) fmt

(* === R1: ct-equality ==================================================== *)

(* Secret-bearing names. An argument participates when it is a bare
   identifier or a record-field access whose (last) name is one of
   these or carries one of the suffixes: intermediate path components
   (module prefixes, the record being projected from) do not count, so
   [share.Shamir_bytes.x = node + 1] is fine while [u.u_code = code]
   is not. *)
let secret_exact =
  [ "code"; "codes"; "vote_code"; "receipt"; "mac"; "msk"; "secret"; "sk";
    "seed"; "share"; "key"; "tag"; "digest" ]

let secret_suffixes =
  [ "_code"; "_receipt"; "_mac"; "_msk"; "_secret"; "_seed"; "_share"; "_key";
    "_tag"; "_digest"; "_hmac" ]

let has_suffix s suf =
  let ls = String.length s and lf = String.length suf in
  ls >= lf && String.sub s (ls - lf) lf = suf

let secret_name n =
  let n = String.lowercase_ascii n in
  List.mem n secret_exact || List.exists (has_suffix n) secret_suffixes

(* The name an argument expression exposes for the secret heuristic. *)
let arg_name e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (last_component txt)
  | Pexp_field (_, { txt; _ }) -> Some (last_component txt)
  | _ -> None

let banned_comparison lid =
  match flatten lid with
  | [ "=" ] -> Some "="
  | [ "<>" ] -> Some "<>"
  | [ "compare" ] | [ "Stdlib"; "compare" ] -> Some "compare"
  | [ "String"; "equal" ] -> Some "String.equal"
  | [ "String"; "compare" ] -> Some "String.compare"
  | [ "Bytes"; "equal" ] -> Some "Bytes.equal"
  | [ "Bytes"; "compare" ] -> Some "Bytes.compare"
  | _ -> None

let ct_equality =
  { name = "ct-equality";
    short = "secret-bearing values must be compared with Dd_crypto.Ct.equal";
    applies =
      (fun p -> under [ "lib"; "crypto" ] p || under [ "lib"; "core" ] p
                || under [ "lib"; "vss" ] p);
    check =
      (fun ~file structure ->
         over_expressions ~file
           (fun ~file e ->
              match e.pexp_desc with
              | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
                (match banned_comparison txt with
                 | None -> []
                 | Some op ->
                   let plain = List.filter_map
                       (function (Asttypes.Nolabel, a) -> Some a | _ -> None) args
                   in
                   let secret =
                     List.filter_map arg_name plain |> List.find_opt secret_name
                   in
                   (match secret with
                    | None -> []
                    | Some name ->
                      [ finding ~rule:"ct-equality" ~file ~loc:e.pexp_loc
                          "(%s) on secret-bearing value `%s` leaks timing on the first \
                           differing byte; use Dd_crypto.Ct.equal" op name ]))
              | _ -> [])
           structure) }

(* === R2: sans-io ======================================================== *)

(* Node and protocol code must be deterministic given its inputs: the
   simulator replays elections from a seed, so ambient randomness,
   wall-clock time and console IO are confined to lib/sim, bin/ and
   bench/. *)
let banned_io_modules = [ "Random"; "Unix" ]

(* Real-file IO is confined to the Dd_store file backend: node code
   persists state through the injected sans-IO [Dd_store.Device], so
   the simulator can crash and cold-restart nodes deterministically.
   The linter itself (lib/analysis) reads source files by nature. *)
let banned_file_io_modules = [ "In_channel"; "Out_channel" ]

let banned_file_io_values =
  [ "open_in"; "open_in_bin"; "open_in_gen";
    "open_out"; "open_out_bin"; "open_out_gen";
    "Sys.rename"; "Sys.remove"; "Sys.file_exists"; "Sys.readdir";
    "Sys.mkdir"; "Sys.rmdir"; "Sys.is_directory"; "Sys.command" ]

let file_io_exempt p =
  under [ "lib"; "storage"; "file_device.ml" ] p || under [ "lib"; "analysis" ] p

(* The serving runtime's OS boundary: the one module allowed to open
   Unix sockets, mirroring the File_device exemption for disk IO. The
   rest of lib/serve speaks the sans-IO Transport.conn record, and
   ambient time / console IO stay banned even here. *)
let socket_io_exempt p = under [ "lib"; "serve"; "socket.ml" ] p

let banned_io_values =
  [ "Sys.time"; "Unix.gettimeofday"; "Unix.time";
    "print_string"; "print_endline"; "print_newline"; "print_char"; "print_int";
    "print_float"; "print_bytes"; "prerr_string"; "prerr_endline"; "prerr_newline";
    "Printf.printf"; "Printf.eprintf"; "Format.printf"; "Format.eprintf";
    "stdout"; "stderr"; "read_line" ]

let sans_io =
  { name = "sans-io";
    short = "no ambient randomness / wall-clock / console IO outside lib/sim";
    applies = (fun p -> under [ "lib" ] p && not (under [ "lib"; "sim" ] p));
    check =
      (fun ~file structure ->
         over_expressions ~file
           (fun ~file e ->
              match e.pexp_desc with
              | Pexp_ident { txt; _ } ->
                let head =
                  match flatten txt with
                  | "Stdlib" :: m :: _ -> m
                  | m :: _ :: _ -> m
                  | _ -> ""
                in
                if
                  List.mem head banned_io_modules
                  && not (head = "Unix" && socket_io_exempt file)
                then
                  [ finding ~rule:"sans-io" ~file ~loc:e.pexp_loc
                      "`%s` is ambient nondeterminism; randomness must come from the \
                       injected Dd_crypto.Drbg, time from the injected `now`"
                      (String.concat "." (flatten txt)) ]
                else if List.exists (matches_name txt) banned_io_values then
                  [ finding ~rule:"sans-io" ~file ~loc:e.pexp_loc
                      "`%s` does IO or reads ambient state; node code is sans-IO — route \
                       effects through the env record (or move this to lib/sim, bin/ or bench/)"
                      (String.concat "." (flatten txt)) ]
                else if
                  (not (file_io_exempt file))
                  && (List.mem head banned_file_io_modules
                      || List.exists (matches_name txt) banned_file_io_values)
                then
                  [ finding ~rule:"sans-io" ~file ~loc:e.pexp_loc
                      "`%s` touches the filesystem; real-file IO is confined to the \
                       Dd_store file backend (lib/storage/file_device.ml) — persist \
                       through the injected Dd_store.Device instead"
                      (String.concat "." (flatten txt)) ]
                else []
              | _ -> [])
           structure) }

(* === R3: exception-hygiene ============================================= *)

(* A Byzantine peer controls every field of every message a node
   handles; a raising lookup or assert in a handler is a remote crash
   (loss of liveness beyond the fv/fb budget). Handlers must use _opt
   variants and drop or reject malformed input explicitly. *)
let banned_raising =
  [ ("Hashtbl.find", "Hashtbl.find_opt");
    ("List.find", "List.find_opt");
    ("List.assoc", "List.assoc_opt");
    ("List.hd", "a match on the list");
    ("List.tl", "a match on the list");
    ("List.nth", "List.nth_opt");
    ("Option.get", "a match on the option");
    ("Array.find", "Array.find_opt");
    ("Queue.pop", "Queue.take_opt");
    ("Queue.peek", "Queue.peek_opt");
    ("int_of_string", "int_of_string_opt");
    ("failwith", "an explicit drop/reject of the message");
    ("invalid_arg", "an explicit drop/reject of the message") ]

let exception_hygiene =
  { name = "exception-hygiene";
    short = "no raising APIs in Byzantine-facing handler code; use _opt + explicit drop";
    applies = (fun p -> under [ "lib"; "core" ] p || under [ "lib"; "consensus" ] p);
    check =
      (fun ~file structure ->
         over_expressions ~file
           (fun ~file e ->
              match e.pexp_desc with
              | Pexp_assert
                  { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
                ->
                (* [assert false] marks dead code; reaching it is a logic
                   bug, not an input-validation failure *)
                []
              | Pexp_assert _ ->
                [ finding ~rule:"exception-hygiene" ~file ~loc:e.pexp_loc
                    "assert raises on adversarial input; validate and drop/reject \
                     explicitly instead" ]
              | Pexp_ident { txt; _ } ->
                (match
                   List.find_opt (fun (b, _) -> matches_name txt b) banned_raising
                 with
                 | Some (b, instead) ->
                   [ finding ~rule:"exception-hygiene" ~file ~loc:e.pexp_loc
                       "`%s` raises on missing/malformed input — a Byzantine peer can \
                        crash this node; use %s" b instead ]
                 | None -> [])
              | _ -> [])
           structure) }

(* === R4: wire-exhaustive =============================================== *)

let wire_type_names = [ "vc_msg"; "bb_msg" ]

let default_wire_constructors =
  [ "Vote"; "Endorse"; "Endorsement"; "Vote_p"; "Announce_batch"; "Consensus";
    "Recover_request"; "Recover_response"; "Vote_set_submit"; "Trustee_post" ]

(* Constructor names mentioned anywhere in a case pattern. *)
let rec pattern_constructors p =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, sub) ->
    last_component txt
    :: (match sub with Some (_, q) -> pattern_constructors q | None -> [])
  | Ppat_or (a, b) -> pattern_constructors a @ pattern_constructors b
  | Ppat_alias (q, _) | Ppat_constraint (q, _) | Ppat_exception q | Ppat_open (_, q) ->
    pattern_constructors q
  | Ppat_tuple ps | Ppat_array ps -> List.concat_map pattern_constructors ps
  | Ppat_record (fields, _) -> List.concat_map (fun (_, q) -> pattern_constructors q) fields
  | _ -> []

(* Is the toplevel of the pattern a catch-all (possibly aliased or
   or-combined with one)? *)
let rec catch_all p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (q, _) | Ppat_constraint (q, _) -> catch_all q
  | Ppat_or (a, b) -> catch_all a || catch_all b
  | _ -> false

let wire_exhaustive ~constructors =
  { name = "wire-exhaustive";
    short = "no wildcard arms in matches over protocol message types";
    applies = (fun _ -> true);
    check =
      (fun ~file structure ->
         over_expressions ~file
           (fun ~file e ->
              let cases =
                match e.pexp_desc with
                | Pexp_match (_, cases) -> cases
                | Pexp_function cases -> cases
                | _ -> []
              in
              if cases = [] then []
              else begin
                let over_wire =
                  List.exists
                    (fun c ->
                       List.exists (fun n -> List.mem n constructors)
                         (pattern_constructors c.pc_lhs))
                    cases
                in
                if not over_wire then []
                else
                  List.filter_map
                    (fun c ->
                       if catch_all c.pc_lhs then
                         Some
                           (finding ~rule:"wire-exhaustive" ~file ~loc:c.pc_lhs.ppat_loc
                              "wildcard arm in a match over a wire-message type silently \
                               discards any future variant; list the constructors explicitly")
                       else None)
                    cases
              end)
           structure) }

(* === R5: vartime-public-only =========================================== *)

(* The documented variable-time surface of the group layer
   (lib/group/curve.mli "timing contract"): [Curve.mul_vartime],
   [Curve.mul2], [Curve.msm], [Curve.msm_pre], and the randomized batch
   verifiers built on them. Their running time depends on their scalar
   inputs (wNAF digit patterns, GLV splits, bucket occupancy), so only
   public data — signatures, proof transcripts, published commitments
   and their openings — may flow in. A secret-named value reaching one
   is a timing side channel; secret-dependent scalars must use the
   fixed-window [Curve.mul] / [mul_base_table] paths instead. *)
let vartime_callees =
  [ "mul_vartime"; "mul2"; "msm"; "msm_pre";
    "verify_batch"; "verify_batch_find"; "verify_shares_batch" ]

let vartime_secret_exact = [ "sk"; "secret"; "witness"; "nonce"; "msk"; "seed" ]
let vartime_secret_suffixes = [ "_sk"; "_secret"; "_witness"; "_nonce"; "_msk"; "_seed" ]

let vartime_secret_name n =
  let n = String.lowercase_ascii n in
  List.mem n vartime_secret_exact || List.exists (has_suffix n) vartime_secret_suffixes

(* The MSM APIs take their scalars inside arrays of pairs, so the scan
   descends through tuple/array/list/record literals to the identifiers
   and field accesses they carry — and through the wrappers that leave
   the carried value unchanged: a type annotation [(sk : Scalar.t)], a
   local open [Module.(sk)], and the tail of a sequence [(log (); sk)]
   all expose the same name. *)
let rec exposed_names e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> [ last_component txt ]
  | Pexp_field (_, { txt; _ }) -> [ last_component txt ]
  | Pexp_tuple es | Pexp_array es -> List.concat_map exposed_names es
  | Pexp_construct (_, Some a) -> exposed_names a
  | Pexp_record (fields, _) -> List.concat_map (fun (_, v) -> exposed_names v) fields
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e)
  | Pexp_sequence (_, e) ->
    exposed_names e
  | _ -> []

let vartime_public_only =
  { name = "vartime-public-only";
    short = "no secret-named values into the variable-time group operations";
    applies = (fun p -> under [ "lib" ] p);
    check =
      (fun ~file structure ->
         over_expressions ~file
           (fun ~file e ->
              match e.pexp_desc with
              | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
                when List.mem (last_component txt) vartime_callees ->
                List.concat_map
                  (fun (_, a) ->
                     List.filter_map
                       (fun name ->
                          if not (vartime_secret_name name) then None
                          else
                            Some
                              (finding ~rule:"vartime-public-only" ~file ~loc:a.pexp_loc
                                 "secret-bearing value `%s` flows into variable-time \
                                  `%s`; the vartime surface is for public data only — \
                                  use the constant-time Curve.mul / comb-table paths \
                                  for secrets"
                                 name (String.concat "." (flatten txt))))
                       (List.sort_uniq compare (exposed_names a)))
                  args
              | _ -> [])
           structure) }

(* === R6: domain-safe-state ============================================= *)

(* The arithmetic stack (lib/bignum, lib/crypto, lib/group, lib/sig)
   runs on every domain of the parallel executor, so module-level
   mutable state there is a data race waiting to happen. Per-domain
   scratch belongs in [Domain.DLS]; compute-once caches belong in
   [Dd_parallel.Once] cells or [Atomic] compare-and-set publishes —
   all three are invisible to this rule. What it flags is a top-level
   [let] whose right-hand side allocates bare shared mutable state
   ([ref], [Array.make], [Bytes.create], [Hashtbl.create], ...) or a
   top-level [lazy] (racing [Lazy.force] raises in OCaml 5).
   Init-once-then-read-only tables can justify themselves with a
   [lint: allow domain-safe-state <why>] comment. *)

let mutable_creators =
  [ "ref"; "Hashtbl.create"; "Array.make"; "Array.create_float";
    "Bytes.create"; "Bytes.make"; "Buffer.create"; "Queue.create";
    "Stack.create"; "Mutex.create"; "Condition.create" ]

(* Peel wrappers that do not change what value the binding holds. *)
let rec binding_body e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e)
  | Pexp_letmodule (_, _, e) | Pexp_sequence (_, e) ->
    binding_body e
  | Pexp_let (_, _, e) -> binding_body e
  | _ -> e

let domain_safe_state =
  { name = "domain-safe-state";
    short = "no top-level mutable state or lazy in the domain-shared arithmetic stack";
    applies =
      (fun p ->
         under [ "lib"; "bignum" ] p || under [ "lib"; "crypto" ] p
         || under [ "lib"; "group" ] p || under [ "lib"; "sig" ] p);
    check =
      (fun ~file structure ->
         (* walk top-level bindings only (module-level state); descend
            into nested modules, whose bindings are just as global *)
         let acc = ref [] in
         let rec walk_structure items =
           List.iter
             (fun item ->
                match item.pstr_desc with
                | Pstr_value (_, bindings) ->
                  List.iter
                    (fun vb ->
                       let body = binding_body vb.pvb_expr in
                       match body.pexp_desc with
                       | Pexp_lazy _ ->
                         acc :=
                           finding ~rule:"domain-safe-state" ~file ~loc:body.pexp_loc
                             "top-level `lazy` races under multiple domains \
                              (Lazy.force raises); use a Dd_parallel.Once cell"
                           :: !acc
                       | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
                         when List.exists (matches_name txt) mutable_creators ->
                         acc :=
                           finding ~rule:"domain-safe-state" ~file ~loc:body.pexp_loc
                             "top-level `%s` is shared mutable state; every domain \
                              sees it — move per-call scratch into Domain.DLS, or \
                              publish compute-once results via Dd_parallel.Once / \
                              Atomic"
                             (String.concat "." (flatten txt))
                           :: !acc
                       | _ -> ())
                    bindings
                | Pstr_module { pmb_expr; _ } -> walk_module_expr pmb_expr
                | Pstr_recmodule mbs ->
                  List.iter (fun { pmb_expr; _ } -> walk_module_expr pmb_expr) mbs
                | _ -> ())
             items
         and walk_module_expr me =
           match me.pmod_desc with
           | Pmod_structure items -> walk_structure items
           | Pmod_functor (_, body) -> walk_module_expr body
           | Pmod_constraint (me, _) -> walk_module_expr me
           | _ -> ()
         in
         walk_structure structure;
         List.rev !acc) }

(* === R8: domain-escape ================================================== *)

(* The static complement to R6. R6 forbids shared module-level state
   in the arithmetic stack; R8 looks at the other side of the race:
   the closures handed to [Dd_parallel.Pool.parallel_for/map/reduce],
   which run concurrently on every domain of the pool. Anything such a
   closure *captures* is shared. The pool's contract
   (lib/parallel/pool.mli) allows exactly one kind of captured write —
   disjoint, index-addressed slots, recognizable syntactically because
   the index chain mentions a name bound inside the closure (the
   element/chunk parameter or something derived from it). Everything
   else — [:=] on a captured ref, [Hashtbl.replace] on a captured
   table, [Buffer.add_*], a captured-array write at a
   closure-independent index (the pre-PR-5 shared-scratch pattern) —
   is a data race by construction. Reads or writes of *top-level*
   mutable bindings of the same module are flagged too: the remedies
   ([Atomic], [Domain.DLS], [Dd_parallel.Once]) never match these
   syntactic shapes, so the shipped patterns pass untouched. *)

let parallel_entry_points = [ "parallel_for"; "parallel_map"; "parallel_reduce" ]

let mutators_always =
  [ (":=", "assignment to a captured ref");
    ("incr", "increment of a captured ref");
    ("decr", "decrement of a captured ref");
    ("Hashtbl.add", "Hashtbl mutation"); ("Hashtbl.replace", "Hashtbl mutation");
    ("Hashtbl.remove", "Hashtbl mutation"); ("Hashtbl.reset", "Hashtbl mutation");
    ("Hashtbl.clear", "Hashtbl mutation");
    ("Buffer.add_string", "Buffer mutation"); ("Buffer.add_bytes", "Buffer mutation");
    ("Buffer.add_char", "Buffer mutation"); ("Buffer.add_subbytes", "Buffer mutation");
    ("Buffer.clear", "Buffer mutation"); ("Buffer.reset", "Buffer mutation");
    ("Queue.push", "Queue mutation"); ("Queue.add", "Queue mutation");
    ("Queue.pop", "Queue mutation"); ("Queue.take", "Queue mutation");
    ("Queue.clear", "Queue mutation");
    ("Stack.push", "Stack mutation"); ("Stack.pop", "Stack mutation");
    ("Bytes.fill", "Bytes mutation"); ("Bytes.blit", "Bytes mutation");
    ("Array.fill", "array mutation"); ("Array.blit", "array mutation") ]

let indexed_setters =
  [ "Array.set"; "Array.unsafe_set"; "Bytes.set"; "Bytes.unsafe_set" ]

let indexed_getters =
  [ "Array.get"; "Array.unsafe_get"; "Bytes.get"; "Bytes.unsafe_get";
    "String.get"; "String.unsafe_get" ]

module SS = Set.Make (String)

let pattern_var_set p =
  let acc = ref SS.empty in
  let it =
    { Ast_iterator.default_iterator with
      pat =
        (fun it p ->
           (match p.ppat_desc with
            | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) -> acc := SS.add txt !acc
            | _ -> ());
           Ast_iterator.default_iterator.pat it p) }
  in
  it.pat it p;
  !acc

(* Base identifier and index chain of a mutation target:
   [a.(i).(j)] -> (a, [i; j]); record projections pass through. *)
let rec target_chain e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident v; _ } -> Some (v, [])
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (Asttypes.Nolabel, tgt) :: idx)
    when List.exists (matches_name txt) indexed_getters ->
    (match target_chain tgt with
     | Some (v, idxs) ->
       Some (v, idxs @ List.filter_map (function (Asttypes.Nolabel, i) -> Some i | _ -> None) idx)
     | None -> None)
  | Pexp_field (r, _) -> target_chain r
  | Pexp_constraint (e, _) -> target_chain e
  | _ -> None

(* Does [e] mention any identifier from [bound]? *)
let mentions_bound bound e =
  let hit = ref false in
  let it =
    { Ast_iterator.default_iterator with
      expr =
        (fun it e ->
           (match e.pexp_desc with
            | Pexp_ident { txt = Longident.Lident v; _ } when SS.mem v bound -> hit := true
            | _ -> ());
           Ast_iterator.default_iterator.expr it e) }
  in
  it.expr it e;
  !hit

(* Names of same-file top-level bindings holding bare mutable state
   (the state R6 bans in the arithmetic stack but other directories
   may legally hold — until a parallel closure reaches for it). *)
let top_level_mutables structure =
  let acc = ref SS.empty in
  let rec walk items =
    List.iter
      (fun item ->
         match item.pstr_desc with
         | Pstr_value (_, bindings) ->
           List.iter
             (fun vb ->
                match vb.pvb_pat.ppat_desc with
                | Ppat_var { txt; _ } ->
                  let body = binding_body vb.pvb_expr in
                  (match body.pexp_desc with
                   | Pexp_lazy _ -> acc := SS.add txt !acc
                   | Pexp_apply ({ pexp_desc = Pexp_ident { txt = c; _ }; _ }, _)
                     when List.exists (matches_name c) mutable_creators ->
                     acc := SS.add txt !acc
                   | _ -> ())
                | _ -> ())
             bindings
         | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure items; _ }; _ } ->
           walk items
         | _ -> ())
      items
  in
  walk structure;
  !acc

(* Scan one closure body. [bound] = names bound inside the closure so
   far (its parameters, then everything let-/pattern-bound within);
   anything not in [bound] is captured. *)
let scan_closure_body ~file ~entry ~top_mutable ~params body =
  let acc = ref [] in
  let add ~loc fmt = Printf.ksprintf (fun m ->
      acc := finding ~rule:"domain-escape" ~file ~loc "%s" m :: !acc) fmt
  in
  let rec go bound e =
    match e.pexp_desc with
    | Pexp_let (rf, vbs, body) ->
      let vars =
        List.fold_left (fun s vb -> SS.union s (pattern_var_set vb.pvb_pat)) SS.empty vbs
      in
      let rhs_bound = match rf with Asttypes.Recursive -> SS.union bound vars | _ -> bound in
      List.iter (fun vb -> go rhs_bound vb.pvb_expr) vbs;
      go (SS.union bound vars) body
    | Pexp_fun (_, default, pat, body) ->
      Option.iter (go bound) default;
      go (SS.union bound (pattern_var_set pat)) body
    | Pexp_function cases ->
      List.iter
        (fun c ->
           let bound = SS.union bound (pattern_var_set c.pc_lhs) in
           Option.iter (go bound) c.pc_guard;
           go bound c.pc_rhs)
        cases
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      go bound scrut;
      List.iter
        (fun c ->
           let bound = SS.union bound (pattern_var_set c.pc_lhs) in
           Option.iter (go bound) c.pc_guard;
           go bound c.pc_rhs)
        cases
    | Pexp_for (pat, lo, hi, _, body) ->
      go bound lo; go bound hi;
      go (SS.union bound (pattern_var_set pat)) body
    | Pexp_setfield (r, _, v) ->
      (match target_chain r with
       | Some (base, _) when not (SS.mem base bound) ->
         add ~loc:e.pexp_loc
           "closure passed to `%s` sets a mutable field of captured `%s`; \
            every domain shares it — use Atomic state or per-domain Domain.DLS"
           entry base
       | _ -> ());
      go bound r; go bound v
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
      let plain = List.filter_map
          (function (Asttypes.Nolabel, a) -> Some a | _ -> None) args
      in
      (match List.find_opt (fun (m, _) -> matches_name txt m) mutators_always with
       | Some (_, what) ->
         (match plain with
          | tgt :: _ ->
            (match target_chain tgt with
             | Some (base, _) when not (SS.mem base bound) ->
               add ~loc:e.pexp_loc
                 "closure passed to `%s` performs %s on captured `%s`; parallel \
                  bodies may only write disjoint index-addressed slots — use \
                  Atomic, Domain.DLS, or return values and combine them after \
                  the parallel call"
                 entry what base
             | _ -> ())
          | [] -> ())
       | None ->
         if List.exists (matches_name txt) indexed_setters then
           match plain with
           | tgt :: rest ->
             let indices = match List.rev rest with
               | _value :: ridx -> List.rev ridx
               | [] -> []
             in
             (match target_chain tgt with
              | Some (base, chain_idx) when not (SS.mem base bound) ->
                if not (List.exists (mentions_bound bound) (chain_idx @ indices)) then
                  add ~loc:e.pexp_loc
                    "closure passed to `%s` writes captured `%s` at an index \
                     independent of the closure's parameters — a shared-slot \
                     race; derive the index from the closure parameter \
                     (disjoint writes) or use Atomic/Domain.DLS"
                    entry base
              | _ -> ())
           | [] -> ());
      List.iter (fun (_, a) -> go bound a) args
    | Pexp_ident { txt = Longident.Lident v; _ }
      when (not (SS.mem v bound)) && SS.mem v top_mutable ->
      add ~loc:e.pexp_loc
        "closure passed to `%s` reaches top-level mutable `%s`; every domain \
         shares it — publish via Dd_parallel.Once / Atomic, or move scratch \
         into Domain.DLS"
        entry v
    | _ ->
      let it =
        { Ast_iterator.default_iterator with expr = (fun _ c -> go bound c) }
      in
      Ast_iterator.default_iterator.expr it e
  in
  go params body;
  !acc

(* Peel wrappers and collect a closure literal's parameters + body. *)
let rec closure_literal e =
  match e.pexp_desc with
  | Pexp_fun (_, _, pat, body) ->
    (match closure_literal body with
     | Some (params, inner) -> Some (SS.union (pattern_var_set pat) params, inner)
     | None -> Some (pattern_var_set pat, body))
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> closure_literal e
  | _ -> None

let domain_escape =
  { name = "domain-escape";
    short = "closures given to Dd_parallel.Pool must not mutate captured or top-level state";
    applies = (fun _ -> true);
    check =
      (fun ~file structure ->
         let top_mutable = top_level_mutables structure in
         over_expressions ~file
           (fun ~file e ->
              match e.pexp_desc with
              | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
                when List.mem (last_component txt) parallel_entry_points ->
                let entry = String.concat "." (flatten txt) in
                List.concat_map
                  (fun (_, a) ->
                     match closure_literal a with
                     | Some (params, body) ->
                       scan_closure_body ~file ~entry ~top_mutable ~params body
                     | None ->
                       (match a.pexp_desc with
                        | Pexp_function cases ->
                          List.concat_map
                            (fun c ->
                               scan_closure_body ~file ~entry ~top_mutable
                                 ~params:(pattern_var_set c.pc_lhs) c.pc_rhs)
                            cases
                        | _ -> []))
                  args
              | _ -> [])
           structure) }

let all ?(wire_constructors = default_wire_constructors) () =
  [ ct_equality; sans_io; exception_hygiene;
    wire_exhaustive ~constructors:wire_constructors; vartime_public_only;
    domain_safe_state; domain_escape ]
