(** Module-qualified call graph over a set of parsed files, the
    backbone of the interprocedural passes (R7 secret-taint). Function
    bodies are kept as raw [Parsetree] expressions; summaries live in
    {!Taint}. *)

type fn = {
  fq : string;           (** qualified name, e.g. ["Ea.setup"], ["Ea.Inner.f"] *)
  unit_module : string;  (** enclosing compilation unit, e.g. ["Ea"] *)
  params : (Asttypes.arg_label * Parsetree.pattern) list;
      (** the [fun] chain's parameters, in declaration order *)
  body : Parsetree.expression;  (** innermost non-[fun] expression *)
  loc : Location.t;
}

type t

(** ["lib/core/ea.ml"] -> ["Ea"]. *)
val module_of_path : string -> string

(** Harvest every top-level (and nested-module) function of every
    file. Files are [(path, parsed structure)] pairs. *)
val build : (string * Parsetree.structure) list -> t

(** All functions, in declaration order across the input files. *)
val functions : t -> fn list

val find : t -> string -> fn option

(** Resolve a call site appearing inside module [current] (dotted
    prefix, e.g. ["Ea"]): unqualified names search the enclosing
    module chain outwards, [M.f] resolves by its last [(module, name)]
    pair — so local module aliases still resolve. [None] for calls
    into the stdlib or out of the analyzed set. *)
val resolve : t -> current:string -> Longident.t -> fn option
