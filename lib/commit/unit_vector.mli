(** Unit-vector option-encoding commitments: a committed [e_choice]
    among [options] coordinates, with homomorphic addition so the tally
    is the opening of the coordinate-wise sum. *)

module Nat = Dd_bignum.Nat

type t = Elgamal.t array
type opening = Elgamal.opening array

(** Commit to the unit vector selecting [choice] out of [options].
    Raises [Invalid_argument] if [choice] is out of range. *)
val commit :
  Dd_group.Group_ctx.t -> Dd_crypto.Drbg.t -> options:int -> choice:int -> t * opening

(** k-out-of-m selection: ones exactly at the (distinct) [choices].
    Raises [Invalid_argument] on out-of-range or duplicate choices. *)
val commit_k :
  Dd_group.Group_ctx.t -> Dd_crypto.Drbg.t -> options:int -> choices:int list -> t * opening

val add : Dd_group.Group_ctx.t -> t -> t -> t
val sum : Dd_group.Group_ctx.t -> options:int -> t list -> t

val add_opening : Dd_group.Group_ctx.t -> opening -> opening -> opening
val sum_openings : Dd_group.Group_ctx.t -> options:int -> opening list -> opening

(** Verify every coordinate opening. *)
val verify : Dd_group.Group_ctx.t -> t -> opening -> bool

(** Verify many unit-vector openings at once: all coordinate equations
    of all vectors fold into one multi-scalar multiplication
    (soundness 2^-128 per batch; see {!Dd_group.Batch}). {b Variable
    time} — published data only. *)
val verify_batch :
  Dd_group.Group_ctx.t -> Dd_crypto.Drbg.t -> (t * opening) list -> bool

(** Does the opening carry exactly the unit vector for [choice]? *)
val opening_is_unit : opening -> choice:int -> bool

(** Decode a tally: per-option counts from the opening of a sum.
    Raises if a count exceeds [max_int] (impossible in any election). *)
val counts_of_opening : opening -> int array

val encode : Dd_group.Group_ctx.t -> t -> string
val equal : Dd_group.Group_ctx.t -> t -> t -> bool
