(* Lifted ElGamal over the shared curve group, used as the paper's
   additively homomorphic commitment scheme for option encodings.

   A commitment to scalar m with randomness r is the pair
     (r*G, m*G + r*H)
   where H is the system-wide second generator with unknown discrete
   log. Componentwise point addition adds committed values and
   randomness; an opening is (m, r). Decommitment verifies both
   components, which makes the scheme binding under the discrete-log
   assumption and hiding because r*H is a one-time pad over <H>. *)

module Nat = Dd_bignum.Nat
module Group_ctx = Dd_group.Group_ctx
module Curve = Dd_group.Curve

type t = {
  c1 : Curve.point;  (* r*G *)
  c2 : Curve.point;  (* m*G + r*H *)
}

type opening = {
  msg : Nat.t;
  rand : Nat.t;
}

let commit gctx ~msg ~rand =
  { c1 = Group_ctx.mul_g gctx rand;
    c2 = Curve.add (Group_ctx.curve gctx) (Group_ctx.mul_g gctx msg) (Group_ctx.mul_h gctx rand) }

let commit_random gctx rng ~msg =
  let rand = Group_ctx.random_scalar gctx rng in
  (commit gctx ~msg ~rand, { msg; rand })

let zero_commitment gctx =
  ignore gctx;
  { c1 = Curve.infinity; c2 = Curve.infinity }

let add gctx a b =
  let c = Group_ctx.curve gctx in
  { c1 = Curve.add c a.c1 b.c1; c2 = Curve.add c a.c2 b.c2 }

let sum gctx = List.fold_left (add gctx) (zero_commitment gctx)

let add_opening gctx a b =
  let fn = Group_ctx.scalar_field gctx in
  let module Modular = Dd_bignum.Modular in
  { msg = Modular.add fn a.msg b.msg; rand = Modular.add fn a.rand b.rand }

let sum_openings gctx = List.fold_left (add_opening gctx) { msg = Nat.zero; rand = Nat.zero }

let verify gctx commitment opening =
  let c = Group_ctx.curve gctx in
  Curve.equal c commitment.c1 (Group_ctx.mul_g gctx opening.rand)
  && Curve.equal c commitment.c2
    (Curve.add c (Group_ctx.mul_g gctx opening.msg) (Group_ctx.mul_h gctx opening.rand))

(* Fold the two opening equations into an MSM accumulator under fresh
   random weights: rand*G - c1 = O and msg*G + rand*H - c2 = O. The
   G/H legs collapse into the accumulator's comb-table coefficients,
   so a batch of n openings costs one 2n-point MSM instead of 3n
   fixed-base multiplications. *)
let accumulate gctx acc rng commitment (opening : opening) =
  let fn = Group_ctx.scalar_field gctx in
  let module Modular = Dd_bignum.Modular in
  let msg = Modular.reduce fn opening.msg and rand = Modular.reduce fn opening.rand in
  let w1 = Dd_group.Batch.weight rng in
  Group_ctx.acc_add acc (Modular.mul fn w1 rand) (Group_ctx.g gctx);
  Group_ctx.acc_sub acc w1 commitment.c1;
  let w2 = Dd_group.Batch.weight rng in
  Group_ctx.acc_add acc (Modular.mul fn w2 msg) (Group_ctx.g gctx);
  Group_ctx.acc_add acc (Modular.mul fn w2 rand) (Group_ctx.h gctx);
  Group_ctx.acc_sub acc w2 commitment.c2

(* Verify many (commitment, opening) pairs at once; soundness 2^-128
   per batch (see Dd_group.Batch). Vartime, public data only. *)
let verify_batch gctx rng (items : (t * opening) array) =
  match Array.length items with
  | 0 -> true
  | 1 -> let c, o = items.(0) in verify gctx c o
  | _ ->
    let acc = Group_ctx.msm_acc gctx in
    Array.iter (fun (c, o) -> accumulate gctx acc rng c o) items;
    Group_ctx.acc_check acc

let equal gctx a b =
  let c = Group_ctx.curve gctx in
  Curve.equal c a.c1 b.c1 && Curve.equal c a.c2 b.c2

let encode gctx t =
  let c = Group_ctx.curve gctx in
  Curve.encode c t.c1 ^ Curve.encode c t.c2

(* Inverse of [encode]. The two point encodings are self-delimiting
   (1 byte for infinity, 1 + 2*byte_len otherwise), so the split point
   is read off the leading tag byte. *)
let decode gctx s =
  let c = Group_ctx.curve gctx in
  let n = String.length s in
  let point_len off =
    if off >= n then None
    else if s.[off] = '\x00' then Some 1
    else Some (1 + (2 * Curve.byte_len c))
  in
  match point_len 0 with
  | None -> None
  | Some l1 -> (
      match point_len l1 with
      | None -> None
      | Some l2 ->
          if l1 + l2 <> n then None
          else begin
            match
              ( Curve.decode c (String.sub s 0 l1),
                Curve.decode c (String.sub s l1 l2) )
            with
            | Some c1, Some c2 -> Some { c1; c2 }
            | _ -> None
          end)

let components t = (t.c1, t.c2)
let make ~c1 ~c2 = { c1; c2 }
