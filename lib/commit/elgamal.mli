(** Lifted-ElGamal commitments: additively homomorphic commitments to
    scalars, instantiating the paper's option-encoding commitment
    scheme. A unit-vector option encoding is a vector of these, one per
    option (see {!Unit_vector}). *)

module Nat = Dd_bignum.Nat
module Group_ctx = Dd_group.Group_ctx
module Curve = Dd_group.Curve

type t

type opening = {
  msg : Nat.t;
  rand : Nat.t;
}

(** Commit to [msg] with explicit randomness. *)
val commit : Group_ctx.t -> msg:Nat.t -> rand:Nat.t -> t

(** Commit with fresh randomness drawn from the DRBG. *)
val commit_random : Group_ctx.t -> Dd_crypto.Drbg.t -> msg:Nat.t -> t * opening

(** The identity commitment (to 0 with randomness 0). *)
val zero_commitment : Group_ctx.t -> t

(** Homomorphic addition of committed values. *)
val add : Group_ctx.t -> t -> t -> t
val sum : Group_ctx.t -> t list -> t

(** The matching operations on openings. *)
val add_opening : Group_ctx.t -> opening -> opening -> opening
val sum_openings : Group_ctx.t -> opening list -> opening

(** Check that [opening] opens [t]. *)
val verify : Group_ctx.t -> t -> opening -> bool

(** Fold one pair's two opening equations into an MSM accumulator
    under fresh random weights from the DRBG (building block for
    {!verify_batch} and the unit-vector batch check). {b Variable
    time} — published data only. *)
val accumulate :
  Group_ctx.t -> Group_ctx.msm_acc -> Dd_crypto.Drbg.t -> t -> opening -> unit

(** Verify many (commitment, opening) pairs with one multi-scalar
    multiplication; accepts a batch containing an invalid opening with
    probability at most 2^-128. {b Variable time} — published data
    only. *)
val verify_batch : Group_ctx.t -> Dd_crypto.Drbg.t -> (t * opening) array -> bool

val equal : Group_ctx.t -> t -> t -> bool

(** Canonical byte encoding (for hashing into transcripts). *)
val encode : Group_ctx.t -> t -> string

(** Inverse of {!encode}, with full point validation; [None] on any
    malformed or off-curve input (used by the segmented board codec). *)
val decode : Group_ctx.t -> string -> t option

(** Raw component access, used by the ZK proof module. *)
val components : t -> Curve.point * Curve.point
val make : c1:Curve.point -> c2:Curve.point -> t
