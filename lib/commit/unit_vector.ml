(* Unit-vector option encodings. The i-th of m options is encoded as
   the unit vector e_i (1 in position i, 0 elsewhere); its commitment is
   the vector of lifted-ElGamal commitments to each coordinate. This is
   the scheme the paper adopts instead of DEMOS's N^(i-1) encoding, so
   the curve size no longer grows with the number of options. *)

module Nat = Dd_bignum.Nat

type t = Elgamal.t array

type opening = Elgamal.opening array

let commit gctx rng ~options ~choice =
  if choice < 0 || choice >= options then invalid_arg "Unit_vector.commit: choice out of range";
  let pairs =
    Array.init options (fun i ->
        let msg = if i = choice then Nat.one else Nat.zero in
        Elgamal.commit_random gctx rng ~msg)
  in
  (Array.map fst pairs, Array.map snd pairs)

(* k-out-of-m selection (the extension sketched in the paper's
   conclusion): commit to a 0/1 vector with ones exactly at [choices]. *)
let commit_k gctx rng ~options ~choices =
  List.iter
    (fun c ->
       if c < 0 || c >= options then invalid_arg "Unit_vector.commit_k: choice out of range")
    choices;
  if List.length (List.sort_uniq compare choices) <> List.length choices then
    invalid_arg "Unit_vector.commit_k: duplicate choice";
  let pairs =
    Array.init options (fun i ->
        let msg = if List.mem i choices then Nat.one else Nat.zero in
        Elgamal.commit_random gctx rng ~msg)
  in
  (Array.map fst pairs, Array.map snd pairs)

let add gctx (a : t) (b : t) : t =
  if Array.length a <> Array.length b then invalid_arg "Unit_vector.add: length mismatch";
  Array.mapi (fun i ai -> Elgamal.add gctx ai b.(i)) a

let sum gctx ~options l =
  List.fold_left (add gctx) (Array.make options (Elgamal.zero_commitment gctx)) l

let add_opening gctx (a : opening) (b : opening) : opening =
  if Array.length a <> Array.length b then invalid_arg "Unit_vector.add_opening: length mismatch";
  Array.mapi (fun i ai -> Elgamal.add_opening gctx ai b.(i)) a

let sum_openings gctx ~options l =
  let zero = Array.make options Elgamal.{ msg = Nat.zero; rand = Nat.zero } in
  List.fold_left (add_opening gctx) zero l

let verify gctx (c : t) (o : opening) =
  Array.length c = Array.length o
  && begin
    let ok = ref true in
    Array.iteri (fun i ci -> if not (Elgamal.verify gctx ci o.(i)) then ok := false) c;
    !ok
  end

(* Batch the coordinate checks of many unit vectors: length checks
   stay serial, every coordinate's two opening equations flatten into
   one ElGamal batch (one MSM for the whole list). *)
let verify_batch gctx rng (items : (t * opening) list) =
  let ok = ref true in
  let coords =
    List.concat_map
      (fun ((c : t), (o : opening)) ->
         if Array.length c <> Array.length o then begin
           ok := false; []
         end
         else Array.to_list (Array.mapi (fun i ci -> (ci, o.(i))) c))
      items
  in
  !ok && Elgamal.verify_batch gctx rng (Array.of_list coords)

(* Check an opening decodes to the unit vector for [choice]. *)
let opening_is_unit (o : opening) ~choice =
  Array.length o > choice
  && begin
    let ok = ref true in
    Array.iteri (fun i oi ->
        let expected = if i = choice then Nat.one else Nat.zero in
        if not (Nat.equal oi.Elgamal.msg expected) then ok := false)
      o;
    !ok
  end

(* Read a tally vector out of openings of a homomorphic sum. *)
let counts_of_opening (o : opening) =
  Array.map (fun oi -> Nat.to_int oi.Elgamal.msg) o

let encode gctx (c : t) =
  String.concat "" (Array.to_list (Array.map (Elgamal.encode gctx) c))

let equal gctx (a : t) (b : t) =
  Array.length a = Array.length b
  && begin
    let ok = ref true in
    Array.iteri (fun i ai -> if not (Elgamal.equal gctx ai b.(i)) then ok := false) a;
    !ok
  end
