(* Modular arithmetic with a reduction strategy chosen at [create] time:

   - secp256k1's field prime is pseudo-Mersenne (p = 2^256 - 2^32 - 977),
     so reduction is two fold-and-add passes: x = hi*2^256 + lo means
     x = hi*(2^32 + 977) + lo (mod p). No division, no big products.

   - NIST P-256's prime is a generalized-Mersenne word-sliding prime
     (p = 2^256 - 2^224 + 2^192 + 2^96 - 1): each 32-bit word of the
     512-bit product above position 8 reduces to a small signed
     combination of lower words (FIPS 186-4 D.2.3), so reduction is one
     signed accumulation pass over 16 words plus a small correction.

   - Everything else (both curve orders, test moduli) uses Barrett: the
     slow Nat.divmod runs once to compute the Barrett constant, and each
     reduction costs two multiplications.

   The fast paths run on reused scratch buffers via Nat's limb kernels,
   so a field multiplication performs one schoolbook product and a
   couple of linear passes without intermediate allocations. The
   scratch lives in Domain.DLS — one set of buffers per domain, shared
   by every context in that domain — so contexts are freely shareable
   across domains (each call borrows its own domain's scratch for the
   duration of the call only). *)

let base_bits = 30
let limb_mask = (1 lsl base_bits) - 1

(* Scratch for the specialized reductions, sized for inputs up to
   576 bits (any product of two 256-bit field residues is < 2^512;
   larger ad-hoc inputs fall back to Nat.rem). *)
type scratch = {
  buf : int array;        (* 20 limbs: the value being reduced *)
  hbuf : int array;       (* secp256k1: hi = buf >> 256 *)
  words : int array;      (* P-256: 16 32-bit words of the input *)
  acc : int array;        (* P-256: 8 signed per-word accumulators *)
}

let make_scratch () = {
  buf = Array.make 20 0;
  hbuf = Array.make 12 0;
  words = Array.make 16 0;
  acc = Array.make 8 0;
}

(* One scratch per domain, shared by all contexts in that domain. A
   call borrows it only for its own duration, and a domain runs one
   reduction at a time, so this is race-free. *)
let scratch_key = Domain.DLS.new_key make_scratch

type reduction =
  | Barrett of Nat.t        (* mu = floor(B^(2k) / modulus) *)
  | Secp256k1
  | P256

type ctx = {
  modulus : Nat.t;
  k : int;                  (* number of 30-bit limbs in the modulus *)
  red : reduction;
  prime : bool;             (* enables Fermat inversion *)
  m_limbs : int array;      (* modulus as a limb buffer (fast paths) *)
  u_mults : Nat.t array;    (* P-256: e * (2^256 mod p) for small e *)
}

let secp256k1_p =
  Nat.of_hex "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"

let nist_p256_p =
  Nat.of_hex "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff"

(* 2^256 mod p256 = 2^224 - 2^192 - 2^96 + 1 *)
let nist_p256_u =
  Nat.sub (Nat.shift_left Nat.one 256) nist_p256_p

let create ?(prime = true) ?(fast = true) modulus =
  if Nat.compare modulus Nat.two < 0 then invalid_arg "Modular.create: modulus < 2";
  let k = (Nat.bit_length modulus + base_bits - 1) / base_bits in
  let red =
    if fast && Nat.equal modulus secp256k1_p then Secp256k1
    else if fast && Nat.equal modulus nist_p256_p then P256
    else begin
      let b2k = Nat.shift_left Nat.one (2 * k * base_bits) in
      Barrett (Nat.div b2k modulus)
    end
  in
  let m_limbs = Array.make (k + 1) 0 in
  ignore (Nat.to_limbs_into modulus m_limbs);
  let u_mults =
    match red with
    | P256 -> Array.init 9 (fun e -> Nat.mul nist_p256_u (Nat.of_int e))
    | _ -> [||]
  in
  { modulus; k; red; prime; m_limbs; u_mults }

let modulus ctx = ctx.modulus

let reduction_name ctx =
  match ctx.red with
  | Barrett _ -> "barrett"
  | Secp256k1 -> "pseudo-mersenne-secp256k1"
  | P256 -> "word-sliding-p256"

(* --- Barrett ----------------------------------------------------------- *)

(* Barrett reduction of x < B^(2k); falls back to divmod for larger x. *)
let reduce_barrett ctx mu x =
  if Nat.bit_length x > 2 * ctx.k * base_bits then Nat.rem x ctx.modulus
  else begin
    let q1 = Nat.shift_right x ((ctx.k - 1) * base_bits) in
    let q2 = Nat.mul q1 mu in
    let q3 = Nat.shift_right q2 ((ctx.k + 1) * base_bits) in
    let r = Nat.sub x (Nat.mul q3 ctx.modulus) in
    let r = if Nat.compare r ctx.modulus >= 0 then Nat.sub r ctx.modulus else r in
    let r = if Nat.compare r ctx.modulus >= 0 then Nat.sub r ctx.modulus else r in
    if Nat.compare r ctx.modulus >= 0 then Nat.rem r ctx.modulus else r
  end

(* --- secp256k1 pseudo-Mersenne ----------------------------------------- *)

let limb_bits buf n =
  if n = 0 then 0
  else begin
    let rec width v = if v = 0 then 0 else 1 + width (v lsr 1) in
    ((n - 1) * base_bits) + width buf.(n - 1)
  end

(* Reduce (st.buf, n) mod p = 2^256 - c, c = 2^32 + 977, by folding the
   part above bit 256 down: x = hi*2^256 + lo = hi*c + lo (mod p). The
   fold accumulates hi*c directly into the low part as two fused
   add-multiply passes — c = 977 + 4*2^30, so hi*c is hi*977 at limb 0
   plus hi*4 at limb 1. Two folds bring any 576-bit input below 2^256;
   one conditional subtract finishes. *)
let reduce_secp256k1 ctx st n =
  let n = ref n in
  while limb_bits st.buf !n > 256 do
    (* hbuf := buf >> 256 (limb 8, bit offset 16) *)
    let nh0 = !n - 8 in
    for i = 0 to nh0 - 1 do
      let lo = st.buf.(i + 8) lsr 16 in
      let hi =
        if i + 9 < !n then (st.buf.(i + 9) lsl 14) land limb_mask else 0
      in
      st.hbuf.(i) <- lo lor hi
    done;
    let nh = Nat.trim_limbs st.hbuf nh0 in
    (* buf := buf mod 2^256 *)
    st.buf.(8) <- st.buf.(8) land 0xffff;
    let nl = Nat.trim_limbs st.buf 9 in
    let n1 = Nat.addmul1_into st.buf nl st.hbuf nh ~shift:0 977 in
    n := Nat.addmul1_into st.buf n1 st.hbuf nh ~shift:1 4
  done;
  while Nat.compare_limbs st.buf !n ctx.m_limbs ctx.k >= 0 do
    n := Nat.sub_into st.buf !n ctx.m_limbs ctx.k
  done;
  Nat.of_limbs st.buf !n

(* --- NIST P-256 word-sliding ------------------------------------------- *)

(* 32-bit word j of (buf, n): bits [32j, 32j + 32). A word spans at most
   three 30-bit limbs. *)
let word32 buf n j =
  let bit = 32 * j in
  let limb = bit / base_bits and off = bit mod base_bits in
  let v = if limb < n then buf.(limb) lsr off else 0 in
  let v =
    if limb + 1 < n then v lor (buf.(limb + 1) lsl (base_bits - off)) else v
  in
  let v =
    if off + 32 > 2 * base_bits && limb + 2 < n
    then v lor (buf.(limb + 2) lsl ((2 * base_bits) - off))
    else v
  in
  v land 0xffffffff

(* Write eight 32-bit words (little-endian) into a 9-limb buffer. *)
let limbs_of_words32 limbs w =
  Array.fill limbs 0 9 0;
  for j = 0 to 7 do
    let bit = 32 * j in
    let limb = bit / base_bits and off = bit mod base_bits in
    limbs.(limb) <- (limbs.(limb) lor (w.(j) lsl off)) land limb_mask;
    limbs.(limb + 1) <-
      (limbs.(limb + 1) lor (w.(j) lsr (base_bits - off))) land limb_mask
  done;
  Nat.of_limbs limbs 9

(* FIPS 186-4 D.2.3: with the 512-bit input split into 32-bit words
   c0..c15, the reduction is s1 + 2*s2 + 2*s3 + s4 + s5 - s6 - s7 - s8
   - s9, expanded below into one signed sum per output word. The final
   signed carry e is folded back via 2^256 = u (mod p). *)
let reduce_p256 ctx st n =
  let c = st.words and d = st.acc in
  for j = 0 to 15 do c.(j) <- word32 st.buf n j done;
  d.(0) <- c.(0) + c.(8) + c.(9) - c.(11) - c.(12) - c.(13) - c.(14);
  d.(1) <- c.(1) + c.(9) + c.(10) - c.(12) - c.(13) - c.(14) - c.(15);
  d.(2) <- c.(2) + c.(10) + c.(11) - c.(13) - c.(14) - c.(15);
  d.(3) <- c.(3) + (2 * c.(11)) + (2 * c.(12)) + c.(13) - c.(15) - c.(8) - c.(9);
  d.(4) <- c.(4) + (2 * c.(12)) + (2 * c.(13)) + c.(14) - c.(9) - c.(10);
  d.(5) <- c.(5) + (2 * c.(13)) + (2 * c.(14)) + c.(15) - c.(10) - c.(11);
  d.(6) <- c.(6) + c.(13) + (3 * c.(14)) + (2 * c.(15)) - c.(8) - c.(9);
  d.(7) <- c.(7) + c.(8) + (3 * c.(15)) - c.(10) - c.(11) - c.(12) - c.(13);
  let carry = ref 0 in
  for i = 0 to 7 do
    let t = d.(i) + !carry in
    let w = t land 0xffffffff in
    d.(i) <- w;
    carry := (t - w) asr 32
  done;
  let e = !carry in     (* |e| <= 8: each d.(i) sums at most 7 words *)
  let v = limbs_of_words32 st.hbuf d in
  let r =
    if e = 0 then v
    else if e > 0 then Nat.add v ctx.u_mults.(e)
    else begin
      let t = ctx.u_mults.(-e) in
      if Nat.compare v t >= 0 then Nat.sub v t
      else Nat.sub (Nat.add v ctx.modulus) t
    end
  in
  let r = ref r in
  while Nat.compare !r ctx.modulus >= 0 do r := Nat.sub !r ctx.modulus done;
  !r

(* --- dispatch ----------------------------------------------------------- *)

let reduce_limbs ctx st n =
  match ctx.red with
  | Barrett _ -> assert false (* never dispatched here *)
  | Secp256k1 -> reduce_secp256k1 ctx st n
  | P256 -> reduce_p256 ctx st n

let reduce ctx x =
  if Nat.compare x ctx.modulus < 0 then x
  else begin
    match ctx.red with
    | Barrett mu -> reduce_barrett ctx mu x
    | Secp256k1 | P256 ->
      if Nat.bit_length x > 512 then Nat.rem x ctx.modulus
      else begin
        let st = Domain.DLS.get scratch_key in
        let n = Nat.to_limbs_into x st.buf in
        reduce_limbs ctx st n
      end
  end

let add ctx a b =
  let s = Nat.add a b in
  if Nat.compare s ctx.modulus >= 0 then Nat.sub s ctx.modulus else s

let sub ctx a b =
  if Nat.compare a b >= 0 then Nat.sub a b
  else Nat.sub (Nat.add a ctx.modulus) b

let neg ctx a = if Nat.is_zero a then a else Nat.sub ctx.modulus a

(* Multiplication of residues: the fast paths write the schoolbook
   product straight into the reduction scratch, skipping the
   intermediate Nat allocation that the Barrett path pays. *)
let mul ctx a b =
  match ctx.red with
  | Barrett mu -> reduce_barrett ctx mu (Nat.mul a b)
  | Secp256k1 | P256 ->
    if Nat.compare a ctx.modulus >= 0 || Nat.compare b ctx.modulus >= 0 then
      (* out-of-contract inputs: reduce first, stay correct *)
      Nat.rem (Nat.mul a b) ctx.modulus
    else begin
      let st = Domain.DLS.get scratch_key in
      let n = Nat.mul_into st.buf a b in
      reduce_limbs ctx st n
    end

let sqr ctx a = mul ctx a a

let double ctx a = add ctx a a

let pow ctx b e =
  let n = Nat.bit_length e in
  let b = reduce ctx b in
  let r = ref Nat.one in
  for i = n - 1 downto 0 do
    r := sqr ctx !r;
    if Nat.testbit e i then r := mul ctx !r b
  done;
  !r

let inv ctx a =
  let a = reduce ctx a in
  if Nat.is_zero a then raise Division_by_zero;
  if ctx.prime then pow ctx a (Nat.sub ctx.modulus Nat.two)
  else begin
    (* extended Euclid with signed coefficients tracked as (sign, nat) *)
    let rec go r0 r1 (s0_neg, s0) (s1_neg, s1) =
      if Nat.is_zero r1 then begin
        if not (Nat.equal r0 Nat.one) then raise Division_by_zero;
        if s0_neg then Nat.sub ctx.modulus (Nat.rem s0 ctx.modulus)
        else Nat.rem s0 ctx.modulus
      end else begin
        let q, r2 = Nat.divmod r0 r1 in
        (* s2 = s0 - q*s1 *)
        let qs1 = Nat.mul q s1 in
        let s2 =
          if s0_neg = s1_neg then begin
            if Nat.compare s0 qs1 >= 0 then (s0_neg, Nat.sub s0 qs1)
            else (not s0_neg, Nat.sub qs1 s0)
          end else (s0_neg, Nat.add s0 qs1)
        in
        go r1 r2 (s1_neg, s1) s2
      end
    in
    go ctx.modulus a (false, Nat.zero) (false, Nat.one)
  end

let of_nat = reduce

let of_int ctx n = reduce ctx (Nat.of_int n)

(* Map a byte string to a residue (used for hash-to-scalar). *)
let of_bytes_be ctx s = reduce ctx (Nat.of_bytes_be s)
