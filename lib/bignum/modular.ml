(* Modular arithmetic with a reduction strategy chosen at [create] time:

   - secp256k1's field prime is pseudo-Mersenne (p = 2^256 - 2^32 - 977),
     so reduction is two fold-and-add passes: x = hi*2^256 + lo means
     x = hi*(2^32 + 977) + lo (mod p). No division, no big products.

   - NIST P-256's prime is a generalized-Mersenne word-sliding prime
     (p = 2^256 - 2^224 + 2^192 + 2^96 - 1): each 32-bit word of the
     512-bit product above position 8 reduces to a small signed
     combination of lower words (FIPS 186-4 D.2.3), so reduction is one
     signed accumulation pass over 16 words plus a small correction.

   - Any other odd modulus (notably both curve orders) gets a Montgomery
     domain: residues are multiplied as x*y*R^-1 mod m (R = 2^(31*hk))
     with the quotient digit m' = -m^-1 mod 2^31 absorbed limb by limb —
     no division and no Barrett product. The standard mul/sqr API stays
     in the standard domain (enter/exit per call, still ~3x cheaper than
     Barrett); [pow] and Fermat [inv] enter the domain once and run the
     whole square-and-multiply chain inside it. The explicit domain API
     ([to_mont]/[of_mont]/[mul_mont]/[sqr_mont]) exposes the raw form
     for callers that want to batch conversions.

   - Everything else (even moduli, oversized moduli, and every modulus
     under [~fast:false]) uses Barrett: the slow Nat.divmod runs once to
     compute the Barrett constant, and each reduction costs two
     multiplications. This is the differential-test reference.

   All multiplicative kernels run over 31-bit half-limbs of Nat's 62-bit
   limbs (a 62x62 partial product does not fit a 63-bit native int; a
   31x31 product plus accumulator exactly does). The two 256-bit curve
   fields and both curve orders are 9 half-limbs wide, so they share the
   unrolled [mul9]/[sqr9] kernels below; other widths use generic loops.

   The fast paths run on reused scratch buffers, so a field
   multiplication performs one flattened product and a couple of linear
   passes without intermediate allocations. The scratch lives in
   Domain.DLS — one set of buffers per domain, shared by every context
   in that domain — so contexts are freely shareable across domains
   (each call borrows its own domain's scratch for the duration of the
   call only). *)

(* 31-bit half-limbs: Nat.base_bits = 62 = 2 * 31, so a limb's halves
   are (v land hmask, v lsr hbits) and the half view needs no repacking. *)
let hbits = Nat.base_bits / 2
let hmask = (1 lsl hbits) - 1

(* Scratch for the fast paths, sized for Montgomery moduli up to 33
   half-limbs (1023 bits) and fold inputs up to 576 bits; larger ad-hoc
   inputs fall back to Nat-level arithmetic. All buffers hold 31-bit
   halves except [limbs] (62-bit limbs, used to cross the Nat boundary). *)
type scratch = {
  xa : int array;     (* 36 halves: operand a / Montgomery base *)
  xb : int array;     (* 36 halves: operand b *)
  ra : int array;     (* 36 halves: Montgomery accumulator / results *)
  prod : int array;   (* 70 halves: product + REDC headroom (2k + 2) *)
  aux : int array;    (* 12 halves: secp256k1 fold's hi = x >> 256 *)
  words : int array;  (* P-256: 16 32-bit words of the input *)
  acc : int array;    (* P-256: 8 signed per-word accumulators *)
  limbs : int array;  (* 20 62-bit limbs: Nat <-> half-limb crossings *)
}

let make_scratch () = {
  xa = Array.make 36 0;
  xb = Array.make 36 0;
  ra = Array.make 36 0;
  prod = Array.make 70 0;
  aux = Array.make 12 0;
  words = Array.make 16 0;
  acc = Array.make 8 0;
  limbs = Array.make 20 0;
}

(* One scratch per domain, shared by all contexts in that domain. A
   call borrows it only for its own duration, and a domain runs one
   reduction at a time, so this is race-free. *)
let scratch_key = Domain.DLS.new_key make_scratch

type strategy =
  | Barrett
  | Secp256k1
  | P256
  | Montgomery

(* Montgomery constants for an odd modulus m < R = 2^(31 * hk):
   [n0] = -m^-1 mod 2^31 (the per-digit quotient), [rr_h] = R^2 mod m
   (multiplying by it enters the domain), [r1_h] = R mod m (the domain
   image of 1). Half buffers are zero-padded to [hk]. *)
type mont = {
  n0 : int;
  rr_h : int array;
  r1_h : int array;
}

type ctx = {
  modulus : Nat.t;
  kl : int;                 (* 62-bit limbs in the modulus *)
  hk : int;                 (* 31-bit halves in the modulus *)
  strategy : strategy;
  prime : bool;             (* enables Fermat inversion *)
  mu : Nat.t;               (* Barrett constant floor(B^2kl / m) *)
  mh : int array;           (* modulus as halves (fast paths) *)
  mont : mont option;       (* Montgomery domain (odd modulus, fast) *)
  u_mults : int array array; (* P-256: e * (2^256 mod p), 0 <= e <= 8,
                                as 9 zero-padded halves each *)
}

let secp256k1_p =
  Nat.of_hex "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f"

let nist_p256_p =
  Nat.of_hex "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff"

(* 2^256 mod p256 = 2^224 - 2^192 - 2^96 + 1 *)
let nist_p256_u =
  Nat.sub (Nat.shift_left Nat.one 256) nist_p256_p

(* Largest modulus the Montgomery scratch is sized for (33 halves). *)
let mont_max_halves = 33

let create ?(prime = true) ?(fast = true) modulus =
  if Nat.compare modulus Nat.two < 0 then invalid_arg "Modular.create: modulus < 2";
  let bits = Nat.bit_length modulus in
  let kl = (bits + Nat.base_bits - 1) / Nat.base_bits in
  let hk = (bits + hbits - 1) / hbits in
  let strategy =
    if fast && Nat.equal modulus secp256k1_p then Secp256k1
    else if fast && Nat.equal modulus nist_p256_p then P256
    else if fast && Nat.is_odd modulus && hk <= mont_max_halves then Montgomery
    else Barrett
  in
  let mu =
    let b2k = Nat.shift_left Nat.one (2 * kl * Nat.base_bits) in
    Nat.div b2k modulus
  in
  (* modulus as zero-padded halves; [2 * kl >= hk] always *)
  let mh = Array.make (2 * kl) 0 in
  let mlimbs = Array.make (kl + 1) 0 in
  let nml = Nat.to_limbs_into modulus mlimbs in
  for i = 0 to nml - 1 do
    mh.(2 * i) <- mlimbs.(i) land hmask;
    mh.((2 * i) + 1) <- mlimbs.(i) lsr hbits
  done;
  let mont =
    if fast && Nat.is_odd modulus && hk <= mont_max_halves then begin
      (* n0 = -m^-1 mod 2^31 by Newton iteration: each step doubles the
         number of correct low bits (1, 2, 4, ..., >= 31 after 6). *)
      let m0 = mh.(0) in
      let x = ref 1 in
      for _ = 1 to 6 do
        let t = (2 - (m0 * !x)) land hmask in
        x := (!x * t) land hmask
      done;
      let n0 = ((1 lsl hbits) - !x) land hmask in
      let to_padded_halves v =
        let h = Array.make (2 * kl) 0 in
        let nl = Nat.to_limbs_into v mlimbs in
        for i = 0 to nl - 1 do
          h.(2 * i) <- mlimbs.(i) land hmask;
          h.((2 * i) + 1) <- mlimbs.(i) lsr hbits
        done;
        h
      in
      let r = Nat.shift_left Nat.one (hbits * hk) in
      let rr_h = to_padded_halves (Nat.rem (Nat.mul r r) modulus) in
      let r1_h = to_padded_halves (Nat.rem r modulus) in
      Some { n0; rr_h; r1_h }
    end
    else None
  in
  let u_mults =
    match strategy with
    | P256 ->
      Array.init 9 (fun e ->
          (* u * e < 2^227: 8 significant halves, padded to 9 *)
          let v = Nat.mul nist_p256_u (Nat.of_int e) in
          let h = Array.make 9 0 in
          let vl = Array.make 5 0 in
          let nl = Nat.to_limbs_into v vl in
          for i = 0 to nl - 1 do
            h.(2 * i) <- vl.(i) land hmask;
            if (2 * i) + 1 < 9 then h.((2 * i) + 1) <- vl.(i) lsr hbits
          done;
          h)
    | _ -> [||]
  in
  { modulus; kl; hk; strategy; prime; mu; mh; mont; u_mults }

let modulus ctx = ctx.modulus

let reduction_name ctx =
  match ctx.strategy with
  | Barrett -> "barrett"
  | Secp256k1 -> "pseudo-mersenne-secp256k1"
  | P256 -> "word-sliding-p256"
  | Montgomery -> "montgomery"

(* --- Nat <-> half-limb crossings --------------------------------------- *)

(* Write [a]'s 31-bit halves into [h], zero-filling up to [pad] entries;
   returns the significant half count. [h] needs room for
   max(pad, 2 * limbs(a)) entries. *)
let unpack_halves st (a : Nat.t) (h : int array) ~pad =
  let nl = Nat.to_limbs_into a st.limbs in
  for i = 0 to nl - 1 do
    let v = Array.unsafe_get st.limbs i in
    Array.unsafe_set h (2 * i) (v land hmask);
    Array.unsafe_set h ((2 * i) + 1) (v lsr hbits)
  done;
  for i = 2 * nl to pad - 1 do h.(i) <- 0 done;
  Nat.trim_limbs h (2 * nl)

(* Pack halves [h.(off .. off + nh - 1)] back into a value. *)
let pack_halves st (h : int array) ~off nh =
  let nl = (nh + 1) / 2 in
  for i = 0 to nl - 1 do
    let lo = if 2 * i < nh then h.(off + (2 * i)) else 0 in
    let hi = if (2 * i) + 1 < nh then h.(off + (2 * i) + 1) else 0 in
    st.limbs.(i) <- lo lor (hi lsl hbits)
  done;
  Nat.of_limbs st.limbs nl

(* --- half-limb linear kernels ------------------------------------------ *)

let half_bits (buf : int array) n =
  if n = 0 then 0
  else begin
    let rec width v = if v = 0 then 0 else 1 + width (v lsr 1) in
    ((n - 1) * hbits) + width buf.(n - 1)
  end

(* dst := dst + (src * m) << (shift halves); requires 0 <= m < 2^31. *)
let half_addmul1 (dst : int array) ndst (src : int array) nsrc ~shift m =
  for j = ndst to shift - 1 do dst.(j) <- 0 done;
  let carry = ref 0 in
  for i = 0 to nsrc - 1 do
    let j = i + shift in
    let cur = if j < ndst then Array.unsafe_get dst j else 0 in
    let t = cur + (m * Array.unsafe_get src i) + !carry in
    Array.unsafe_set dst j (t land hmask);
    carry := t lsr hbits
  done;
  let j = ref (nsrc + shift) in
  while !carry <> 0 do
    let cur = if !j < ndst then Array.unsafe_get dst !j else 0 in
    let t = cur + !carry in
    Array.unsafe_set dst !j (t land hmask);
    carry := t lsr hbits;
    incr j
  done;
  Nat.trim_limbs dst (if !j > ndst then !j else ndst)

(* dst := dst - src; requires dst >= src numerically. *)
let half_sub_into (dst : int array) ndst (src : int array) nsrc =
  let borrow = ref 0 in
  for i = 0 to ndst - 1 do
    let bv = if i < nsrc then Array.unsafe_get src i else 0 in
    let d = Array.unsafe_get dst i - bv - !borrow in
    Array.unsafe_set dst i (d land hmask);
    borrow := (d lsr hbits) land 1
  done;
  Nat.trim_limbs dst ndst

(* --- unrolled 9-half multiply / square --------------------------------- *)
(* 9x9 half-limb schoolbook product, fully unrolled (fiat-crypto-style
   flattened product scanning). Operands are 31-bit half buffers with at
   least 9 entries (zero-padded); writes halves 0..17 of [dst]. Columns
   accumulate low and high parts of each 62-bit partial product
   separately so no intermediate exceeds the native-int range: a column
   sums at most 9 products' halves (< 9 * 2^31) plus a carry (< 2^36). *)
let mul9 (dst : int array) (a : int array) (b : int array) =
  let a0 = Array.unsafe_get a 0 in
  let a1 = Array.unsafe_get a 1 in
  let a2 = Array.unsafe_get a 2 in
  let a3 = Array.unsafe_get a 3 in
  let a4 = Array.unsafe_get a 4 in
  let a5 = Array.unsafe_get a 5 in
  let a6 = Array.unsafe_get a 6 in
  let a7 = Array.unsafe_get a 7 in
  let a8 = Array.unsafe_get a 8 in
  let b0 = Array.unsafe_get b 0 in
  let b1 = Array.unsafe_get b 1 in
  let b2 = Array.unsafe_get b 2 in
  let b3 = Array.unsafe_get b 3 in
  let b4 = Array.unsafe_get b 4 in
  let b5 = Array.unsafe_get b 5 in
  let b6 = Array.unsafe_get b 6 in
  let b7 = Array.unsafe_get b 7 in
  let b8 = Array.unsafe_get b 8 in
  let cr = 0 in
  (* column 0 *)
  let p0 = a0 * b0 in
  let sl = (p0 land hmask) in
  let sh = (p0 lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 0 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 1 *)
  let p0 = a0 * b1 in
  let p1 = a1 * b0 in
  let sl = (p0 land hmask) + (p1 land hmask) in
  let sh = (p0 lsr hbits) + (p1 lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 1 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 2 *)
  let p0 = a0 * b2 in
  let p1 = a1 * b1 in
  let p2 = a2 * b0 in
  let sl = (p0 land hmask) + (p1 land hmask) + (p2 land hmask) in
  let sh = (p0 lsr hbits) + (p1 lsr hbits) + (p2 lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 2 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 3 *)
  let p0 = a0 * b3 in
  let p1 = a1 * b2 in
  let p2 = a2 * b1 in
  let p3 = a3 * b0 in
  let sl = (p0 land hmask) + (p1 land hmask) + (p2 land hmask) + (p3 land hmask) in
  let sh = (p0 lsr hbits) + (p1 lsr hbits) + (p2 lsr hbits) + (p3 lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 3 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 4 *)
  let p0 = a0 * b4 in
  let p1 = a1 * b3 in
  let p2 = a2 * b2 in
  let p3 = a3 * b1 in
  let p4 = a4 * b0 in
  let sl = (p0 land hmask) + (p1 land hmask) + (p2 land hmask) + (p3 land hmask) + (p4 land hmask) in
  let sh = (p0 lsr hbits) + (p1 lsr hbits) + (p2 lsr hbits) + (p3 lsr hbits) + (p4 lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 4 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 5 *)
  let p0 = a0 * b5 in
  let p1 = a1 * b4 in
  let p2 = a2 * b3 in
  let p3 = a3 * b2 in
  let p4 = a4 * b1 in
  let p5 = a5 * b0 in
  let sl = (p0 land hmask) + (p1 land hmask) + (p2 land hmask) + (p3 land hmask) + (p4 land hmask) + (p5 land hmask) in
  let sh = (p0 lsr hbits) + (p1 lsr hbits) + (p2 lsr hbits) + (p3 lsr hbits) + (p4 lsr hbits) + (p5 lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 5 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 6 *)
  let p0 = a0 * b6 in
  let p1 = a1 * b5 in
  let p2 = a2 * b4 in
  let p3 = a3 * b3 in
  let p4 = a4 * b2 in
  let p5 = a5 * b1 in
  let p6 = a6 * b0 in
  let sl = (p0 land hmask) + (p1 land hmask) + (p2 land hmask) + (p3 land hmask) + (p4 land hmask) + (p5 land hmask) + (p6 land hmask) in
  let sh = (p0 lsr hbits) + (p1 lsr hbits) + (p2 lsr hbits) + (p3 lsr hbits) + (p4 lsr hbits) + (p5 lsr hbits) + (p6 lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 6 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 7 *)
  let p0 = a0 * b7 in
  let p1 = a1 * b6 in
  let p2 = a2 * b5 in
  let p3 = a3 * b4 in
  let p4 = a4 * b3 in
  let p5 = a5 * b2 in
  let p6 = a6 * b1 in
  let p7 = a7 * b0 in
  let sl = (p0 land hmask) + (p1 land hmask) + (p2 land hmask) + (p3 land hmask) + (p4 land hmask) + (p5 land hmask) + (p6 land hmask) + (p7 land hmask) in
  let sh = (p0 lsr hbits) + (p1 lsr hbits) + (p2 lsr hbits) + (p3 lsr hbits) + (p4 lsr hbits) + (p5 lsr hbits) + (p6 lsr hbits) + (p7 lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 7 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 8 *)
  let p0 = a0 * b8 in
  let p1 = a1 * b7 in
  let p2 = a2 * b6 in
  let p3 = a3 * b5 in
  let p4 = a4 * b4 in
  let p5 = a5 * b3 in
  let p6 = a6 * b2 in
  let p7 = a7 * b1 in
  let p8 = a8 * b0 in
  let sl = (p0 land hmask) + (p1 land hmask) + (p2 land hmask) + (p3 land hmask) + (p4 land hmask) + (p5 land hmask) + (p6 land hmask) + (p7 land hmask) + (p8 land hmask) in
  let sh = (p0 lsr hbits) + (p1 lsr hbits) + (p2 lsr hbits) + (p3 lsr hbits) + (p4 lsr hbits) + (p5 lsr hbits) + (p6 lsr hbits) + (p7 lsr hbits) + (p8 lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 8 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 9 *)
  let p0 = a1 * b8 in
  let p1 = a2 * b7 in
  let p2 = a3 * b6 in
  let p3 = a4 * b5 in
  let p4 = a5 * b4 in
  let p5 = a6 * b3 in
  let p6 = a7 * b2 in
  let p7 = a8 * b1 in
  let sl = (p0 land hmask) + (p1 land hmask) + (p2 land hmask) + (p3 land hmask) + (p4 land hmask) + (p5 land hmask) + (p6 land hmask) + (p7 land hmask) in
  let sh = (p0 lsr hbits) + (p1 lsr hbits) + (p2 lsr hbits) + (p3 lsr hbits) + (p4 lsr hbits) + (p5 lsr hbits) + (p6 lsr hbits) + (p7 lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 9 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 10 *)
  let p0 = a2 * b8 in
  let p1 = a3 * b7 in
  let p2 = a4 * b6 in
  let p3 = a5 * b5 in
  let p4 = a6 * b4 in
  let p5 = a7 * b3 in
  let p6 = a8 * b2 in
  let sl = (p0 land hmask) + (p1 land hmask) + (p2 land hmask) + (p3 land hmask) + (p4 land hmask) + (p5 land hmask) + (p6 land hmask) in
  let sh = (p0 lsr hbits) + (p1 lsr hbits) + (p2 lsr hbits) + (p3 lsr hbits) + (p4 lsr hbits) + (p5 lsr hbits) + (p6 lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 10 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 11 *)
  let p0 = a3 * b8 in
  let p1 = a4 * b7 in
  let p2 = a5 * b6 in
  let p3 = a6 * b5 in
  let p4 = a7 * b4 in
  let p5 = a8 * b3 in
  let sl = (p0 land hmask) + (p1 land hmask) + (p2 land hmask) + (p3 land hmask) + (p4 land hmask) + (p5 land hmask) in
  let sh = (p0 lsr hbits) + (p1 lsr hbits) + (p2 lsr hbits) + (p3 lsr hbits) + (p4 lsr hbits) + (p5 lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 11 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 12 *)
  let p0 = a4 * b8 in
  let p1 = a5 * b7 in
  let p2 = a6 * b6 in
  let p3 = a7 * b5 in
  let p4 = a8 * b4 in
  let sl = (p0 land hmask) + (p1 land hmask) + (p2 land hmask) + (p3 land hmask) + (p4 land hmask) in
  let sh = (p0 lsr hbits) + (p1 lsr hbits) + (p2 lsr hbits) + (p3 lsr hbits) + (p4 lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 12 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 13 *)
  let p0 = a5 * b8 in
  let p1 = a6 * b7 in
  let p2 = a7 * b6 in
  let p3 = a8 * b5 in
  let sl = (p0 land hmask) + (p1 land hmask) + (p2 land hmask) + (p3 land hmask) in
  let sh = (p0 lsr hbits) + (p1 lsr hbits) + (p2 lsr hbits) + (p3 lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 13 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 14 *)
  let p0 = a6 * b8 in
  let p1 = a7 * b7 in
  let p2 = a8 * b6 in
  let sl = (p0 land hmask) + (p1 land hmask) + (p2 land hmask) in
  let sh = (p0 lsr hbits) + (p1 lsr hbits) + (p2 lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 14 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 15 *)
  let p0 = a7 * b8 in
  let p1 = a8 * b7 in
  let sl = (p0 land hmask) + (p1 land hmask) in
  let sh = (p0 lsr hbits) + (p1 lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 15 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 16 *)
  let p0 = a8 * b8 in
  let sl = (p0 land hmask) in
  let sh = (p0 lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 16 (s land hmask);
  let cr = (s lsr hbits) + sh in
  Array.unsafe_set dst 17 cr

(* 9-half squaring, unrolled: cross products below the diagonal are
   computed once and doubled per column (45 + 9 multiplications instead
   of 81). Same bounds as [mul9]: doubled cross sums stay < 9 * 2^31. *)
let sqr9 (dst : int array) (a : int array) =
  let a0 = Array.unsafe_get a 0 in
  let a1 = Array.unsafe_get a 1 in
  let a2 = Array.unsafe_get a 2 in
  let a3 = Array.unsafe_get a 3 in
  let a4 = Array.unsafe_get a 4 in
  let a5 = Array.unsafe_get a 5 in
  let a6 = Array.unsafe_get a 6 in
  let a7 = Array.unsafe_get a 7 in
  let a8 = Array.unsafe_get a 8 in
  let cr = 0 in
  (* column 0 *)
  let sl = 0 in
  let sh = 0 in
  let d = a0 * a0 in
  let sl = sl + (d land hmask) in
  let sh = sh + (d lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 0 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 1 *)
  let p0 = a0 * a1 in
  let sl = 2 * ((p0 land hmask)) in
  let sh = 2 * ((p0 lsr hbits)) in
  let s = cr + sl in
  Array.unsafe_set dst 1 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 2 *)
  let p0 = a0 * a2 in
  let sl = 2 * ((p0 land hmask)) in
  let sh = 2 * ((p0 lsr hbits)) in
  let d = a1 * a1 in
  let sl = sl + (d land hmask) in
  let sh = sh + (d lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 2 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 3 *)
  let p0 = a0 * a3 in
  let p1 = a1 * a2 in
  let sl = 2 * ((p0 land hmask) + (p1 land hmask)) in
  let sh = 2 * ((p0 lsr hbits) + (p1 lsr hbits)) in
  let s = cr + sl in
  Array.unsafe_set dst 3 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 4 *)
  let p0 = a0 * a4 in
  let p1 = a1 * a3 in
  let sl = 2 * ((p0 land hmask) + (p1 land hmask)) in
  let sh = 2 * ((p0 lsr hbits) + (p1 lsr hbits)) in
  let d = a2 * a2 in
  let sl = sl + (d land hmask) in
  let sh = sh + (d lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 4 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 5 *)
  let p0 = a0 * a5 in
  let p1 = a1 * a4 in
  let p2 = a2 * a3 in
  let sl = 2 * ((p0 land hmask) + (p1 land hmask) + (p2 land hmask)) in
  let sh = 2 * ((p0 lsr hbits) + (p1 lsr hbits) + (p2 lsr hbits)) in
  let s = cr + sl in
  Array.unsafe_set dst 5 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 6 *)
  let p0 = a0 * a6 in
  let p1 = a1 * a5 in
  let p2 = a2 * a4 in
  let sl = 2 * ((p0 land hmask) + (p1 land hmask) + (p2 land hmask)) in
  let sh = 2 * ((p0 lsr hbits) + (p1 lsr hbits) + (p2 lsr hbits)) in
  let d = a3 * a3 in
  let sl = sl + (d land hmask) in
  let sh = sh + (d lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 6 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 7 *)
  let p0 = a0 * a7 in
  let p1 = a1 * a6 in
  let p2 = a2 * a5 in
  let p3 = a3 * a4 in
  let sl = 2 * ((p0 land hmask) + (p1 land hmask) + (p2 land hmask) + (p3 land hmask)) in
  let sh = 2 * ((p0 lsr hbits) + (p1 lsr hbits) + (p2 lsr hbits) + (p3 lsr hbits)) in
  let s = cr + sl in
  Array.unsafe_set dst 7 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 8 *)
  let p0 = a0 * a8 in
  let p1 = a1 * a7 in
  let p2 = a2 * a6 in
  let p3 = a3 * a5 in
  let sl = 2 * ((p0 land hmask) + (p1 land hmask) + (p2 land hmask) + (p3 land hmask)) in
  let sh = 2 * ((p0 lsr hbits) + (p1 lsr hbits) + (p2 lsr hbits) + (p3 lsr hbits)) in
  let d = a4 * a4 in
  let sl = sl + (d land hmask) in
  let sh = sh + (d lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 8 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 9 *)
  let p0 = a1 * a8 in
  let p1 = a2 * a7 in
  let p2 = a3 * a6 in
  let p3 = a4 * a5 in
  let sl = 2 * ((p0 land hmask) + (p1 land hmask) + (p2 land hmask) + (p3 land hmask)) in
  let sh = 2 * ((p0 lsr hbits) + (p1 lsr hbits) + (p2 lsr hbits) + (p3 lsr hbits)) in
  let s = cr + sl in
  Array.unsafe_set dst 9 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 10 *)
  let p0 = a2 * a8 in
  let p1 = a3 * a7 in
  let p2 = a4 * a6 in
  let sl = 2 * ((p0 land hmask) + (p1 land hmask) + (p2 land hmask)) in
  let sh = 2 * ((p0 lsr hbits) + (p1 lsr hbits) + (p2 lsr hbits)) in
  let d = a5 * a5 in
  let sl = sl + (d land hmask) in
  let sh = sh + (d lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 10 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 11 *)
  let p0 = a3 * a8 in
  let p1 = a4 * a7 in
  let p2 = a5 * a6 in
  let sl = 2 * ((p0 land hmask) + (p1 land hmask) + (p2 land hmask)) in
  let sh = 2 * ((p0 lsr hbits) + (p1 lsr hbits) + (p2 lsr hbits)) in
  let s = cr + sl in
  Array.unsafe_set dst 11 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 12 *)
  let p0 = a4 * a8 in
  let p1 = a5 * a7 in
  let sl = 2 * ((p0 land hmask) + (p1 land hmask)) in
  let sh = 2 * ((p0 lsr hbits) + (p1 lsr hbits)) in
  let d = a6 * a6 in
  let sl = sl + (d land hmask) in
  let sh = sh + (d lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 12 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 13 *)
  let p0 = a5 * a8 in
  let p1 = a6 * a7 in
  let sl = 2 * ((p0 land hmask) + (p1 land hmask)) in
  let sh = 2 * ((p0 lsr hbits) + (p1 lsr hbits)) in
  let s = cr + sl in
  Array.unsafe_set dst 13 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 14 *)
  let p0 = a6 * a8 in
  let sl = 2 * ((p0 land hmask)) in
  let sh = 2 * ((p0 lsr hbits)) in
  let d = a7 * a7 in
  let sl = sl + (d land hmask) in
  let sh = sh + (d lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 14 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 15 *)
  let p0 = a7 * a8 in
  let sl = 2 * ((p0 land hmask)) in
  let sh = 2 * ((p0 lsr hbits)) in
  let s = cr + sl in
  Array.unsafe_set dst 15 (s land hmask);
  let cr = (s lsr hbits) + sh in
  (* column 16 *)
  let sl = 0 in
  let sh = 0 in
  let d = a8 * a8 in
  let sl = sl + (d land hmask) in
  let sh = sh + (d lsr hbits) in
  let s = cr + sl in
  Array.unsafe_set dst 16 (s land hmask);
  let cr = (s lsr hbits) + sh in
  Array.unsafe_set dst 17 cr

(* --- Barrett ----------------------------------------------------------- *)

(* Barrett reduction of x < B^(2k); falls back to divmod for larger x. *)
let reduce_barrett ctx x =
  if Nat.bit_length x > 2 * ctx.kl * Nat.base_bits then Nat.rem x ctx.modulus
  else begin
    let q1 = Nat.shift_right x ((ctx.kl - 1) * Nat.base_bits) in
    let q2 = Nat.mul q1 ctx.mu in
    let q3 = Nat.shift_right q2 ((ctx.kl + 1) * Nat.base_bits) in
    let r = Nat.sub x (Nat.mul q3 ctx.modulus) in
    let r = if Nat.compare r ctx.modulus >= 0 then Nat.sub r ctx.modulus else r in
    let r = if Nat.compare r ctx.modulus >= 0 then Nat.sub r ctx.modulus else r in
    if Nat.compare r ctx.modulus >= 0 then Nat.rem r ctx.modulus else r
  end

(* --- secp256k1 pseudo-Mersenne ----------------------------------------- *)

(* Reduce (st.prod, n) mod p = 2^256 - c, c = 2^32 + 977, by folding the
   part above bit 256 down: x = hi*2^256 + lo = hi*c + lo (mod p). Bit
   256 sits at half 8, offset 8 (256 = 8*31 + 8). The fold accumulates
   hi*c directly into the low part as two fused add-multiply passes —
   c = 977 + 2*2^31, so hi*c is hi*977 at half 0 plus hi*2 at half 1.
   Two folds bring any 558-bit product below ~2^257; one conditional
   subtract finishes. *)
let reduce_secp256k1 ctx st n =
  let buf = st.prod in
  if n > 18 then begin
    (* wider than a product of residues: generic fold loop *)
    let n = ref n in
    while half_bits buf !n > 256 do
      let nh0 = !n - 8 in
      for i = 0 to nh0 - 1 do
        let lo = buf.(i + 8) lsr 8 in
        let hi =
          if i + 9 < !n then (buf.(i + 9) lsl (hbits - 8)) land hmask else 0
        in
        st.aux.(i) <- lo lor hi
      done;
      let nh = Nat.trim_limbs st.aux nh0 in
      buf.(8) <- buf.(8) land 0xff;
      let nl = Nat.trim_limbs buf 9 in
      let n1 = half_addmul1 buf nl st.aux nh ~shift:0 977 in
      n := half_addmul1 buf n1 st.aux nh ~shift:1 2
    done;
    while Nat.compare_limbs buf !n ctx.mh ctx.hk >= 0 do
      n := half_sub_into buf !n ctx.mh ctx.hk
    done;
    pack_halves st buf ~off:0 !n
  end
  else begin
    (* the hot shape (a full mul9/sqr9 product, <= 18 halves), folded
       flat: each pass rewrites buf 0..11 as
       lo + hi*977 + hi*2^32 (the 2^32 term is 2*hi shifted one half),
       all in one fused carry chain — no subroutine calls, no trims.
       hi < 2^302 here, so one pass lands under 2^336, two under
       2^257, and the loop runs at most three times. *)
    let h = st.aux in
    for i = n to 17 do buf.(i) <- 0 done;
    let above = ref 0 in
    above := buf.(8) lsr 8;
    for i = 9 to 17 do above := !above lor buf.(i) done;
    while !above <> 0 do
      for i = 0 to 9 do
        let lo = Array.unsafe_get buf (8 + i) lsr 8 in
        let hi =
          if i < 9 then (Array.unsafe_get buf (9 + i) lsl (hbits - 8)) land hmask
          else 0
        in
        Array.unsafe_set h i (lo lor hi)
      done;
      buf.(8) <- buf.(8) land 0xff;
      for i = 9 to 17 do buf.(i) <- 0 done;
      let c = ref 0 in
      for i = 0 to 10 do
        let hv = if i <= 9 then Array.unsafe_get h i else 0 in
        let pv = if i >= 1 then Array.unsafe_get h (i - 1) else 0 in
        let t = Array.unsafe_get buf i + (977 * hv) + (2 * pv) + !c in
        Array.unsafe_set buf i (t land hmask);
        c := t lsr hbits
      done;
      if !c <> 0 then buf.(11) <- !c;
      above := buf.(8) lsr 8;
      for i = 9 to 11 do above := !above lor buf.(i) done
    done;
    while Nat.compare_limbs buf 9 ctx.mh ctx.hk >= 0 do
      ignore (half_sub_into buf 9 ctx.mh ctx.hk)
    done;
    pack_halves st buf ~off:0 9
  end

(* --- NIST P-256 word-sliding ------------------------------------------- *)

(* 32-bit word j of (buf, n): bits [32j, 32j + 32). Since
   32j = 31j + j, word j starts in half j at bit offset j (for the
   j <= 15 this reduction uses), spanning at most two halves
   (j + 32 <= 62) — no division needed to locate it. *)
let word32 (buf : int array) n j =
  let v = if j < n then Array.unsafe_get buf j lsr j else 0 in
  let v =
    if j + 1 < n then v lor (Array.unsafe_get buf (j + 1) lsl (hbits - j))
    else v
  in
  v land 0xffffffff

(* FIPS 186-4 D.2.3: with the 512-bit input split into 32-bit words
   c0..c15, the reduction is s1 + 2*s2 + 2*s3 + s4 + s5 - s6 - s7 - s8
   - s9, expanded below into one signed sum per output word. The final
   signed carry e is folded back via 2^256 = u (mod p). The whole tail
   stays in half-limbs: words repack into halves with one fused pass
   (word j lands in halves j, j+1 at offset j, as in [word32]), and the
   e-fold adds or subtracts the precomputed u*|e| half vector in place —
   no Nat allocation until the final pack. *)
let reduce_p256 ctx st n =
  let c = st.words and d = st.acc in
  for j = 0 to 15 do c.(j) <- word32 st.prod n j done;
  d.(0) <- c.(0) + c.(8) + c.(9) - c.(11) - c.(12) - c.(13) - c.(14);
  d.(1) <- c.(1) + c.(9) + c.(10) - c.(12) - c.(13) - c.(14) - c.(15);
  d.(2) <- c.(2) + c.(10) + c.(11) - c.(13) - c.(14) - c.(15);
  d.(3) <- c.(3) + (2 * c.(11)) + (2 * c.(12)) + c.(13) - c.(15) - c.(8) - c.(9);
  d.(4) <- c.(4) + (2 * c.(12)) + (2 * c.(13)) + c.(14) - c.(9) - c.(10);
  d.(5) <- c.(5) + (2 * c.(13)) + (2 * c.(14)) + c.(15) - c.(10) - c.(11);
  d.(6) <- c.(6) + c.(13) + (3 * c.(14)) + (2 * c.(15)) - c.(8) - c.(9);
  d.(7) <- c.(7) + c.(8) + (3 * c.(15)) - c.(10) - c.(11) - c.(12) - c.(13);
  let carry = ref 0 in
  for i = 0 to 7 do
    let t = d.(i) + !carry in
    let w = t land 0xffffffff in
    d.(i) <- w;
    carry := (t - w) asr 32
  done;
  let e = !carry in     (* |e| <= 8: each d.(i) sums at most 7 words *)
  let h = st.ra in
  Array.fill h 0 10 0;
  for j = 0 to 7 do
    let v = Array.unsafe_get d j in
    Array.unsafe_set h j (Array.unsafe_get h j + ((v lsl j) land hmask));
    Array.unsafe_set h (j + 1) (Array.unsafe_get h (j + 1) + (v lsr (hbits - j)))
  done;
  let cc = ref 0 in
  for i = 0 to 8 do
    let t = Array.unsafe_get h i + !cc in
    Array.unsafe_set h i (t land hmask);
    cc := t lsr hbits
  done;
  if e > 0 then begin
    (* v + u*e < 2^256 + 2^227: still fits nine halves *)
    let u = ctx.u_mults.(e) in
    let cc = ref 0 in
    for i = 0 to 8 do
      let t = Array.unsafe_get h i + Array.unsafe_get u i + !cc in
      Array.unsafe_set h i (t land hmask);
      cc := t lsr hbits
    done
  end
  else if e < 0 then begin
    let u = ctx.u_mults.(-e) in
    let br = ref 0 in
    for i = 0 to 8 do
      let t = Array.unsafe_get h i - Array.unsafe_get u i - !br in
      Array.unsafe_set h i (t land hmask);
      br := (t lsr hbits) land 1
    done;
    if !br <> 0 then begin
      (* v - u*e went negative; |v - u*e| < 2^227 < p, so adding p
         back once lands in (0, p) — the final carry out cancels the
         borrow and is dropped *)
      let cc = ref 0 in
      for i = 0 to 8 do
        let t = Array.unsafe_get h i + Array.unsafe_get ctx.mh i + !cc in
        Array.unsafe_set h i (t land hmask);
        cc := t lsr hbits
      done
    end
  end;
  while Nat.compare_limbs h 9 ctx.mh ctx.hk >= 0 do
    ignore (half_sub_into h 9 ctx.mh ctx.hk)
  done;
  pack_halves st h ~off:0 9

(* --- Montgomery engine ------------------------------------------------- *)

(* In-place Montgomery reduction of the 2k-half product in [p]: for each
   of the k low halves, absorb it with the quotient digit
   q = p_i * n0 mod 2^31, adding q*m at position i. Leaves
   (p / R) mod-ish in p.(k ..); the result is < 2m (caller subtracts m
   at most once). [p] needs 2k + 2 entries with the two above the
   product zeroed (carry headroom). *)
let mont_redc (p : int array) (mh : int array) k n0 =
  for i = 0 to k - 1 do
    let q = (Array.unsafe_get p i * n0) land hmask in
    let c = ref 0 in
    for j = 0 to k - 1 do
      let s =
        Array.unsafe_get p (i + j) + (q * Array.unsafe_get mh j) + !c
      in
      Array.unsafe_set p (i + j) (s land hmask);
      c := s lsr hbits
    done;
    let j = ref (i + k) in
    while !c <> 0 do
      let s = Array.unsafe_get p !j + !c in
      Array.unsafe_set p !j (s land hmask);
      c := s lsr hbits;
      incr j
    done
  done

(* Copy the REDC result out of st.prod.(k ..) into [dst], conditionally
   subtract the modulus, zero-pad to k halves; returns the count. *)
let mont_finish ctx st (dst : int array) =
  let k = ctx.hk in
  let p = st.prod in
  let nr = ref (k + 2) in
  while !nr > 0 && p.(k + !nr - 1) = 0 do decr nr done;
  for i = 0 to !nr - 1 do dst.(i) <- p.(k + i) done;
  let n = ref !nr in
  while Nat.compare_limbs dst !n ctx.mh k >= 0 do
    n := half_sub_into dst !n ctx.mh k
  done;
  for i = !n to k - 1 do dst.(i) <- 0 done;
  !n

(* dst := x * y * R^-1 mod m, over zero-padded k-half buffers. [dst] may
   alias [x] or [y] (the product is fully formed before [dst] is
   written). Returns the significant half count. *)
let mont_mul ctx mo st (x : int array) (y : int array) (dst : int array) =
  let k = ctx.hk in
  let p = st.prod in
  if k = 9 then begin
    mul9 p x y;
    p.(18) <- 0;
    p.(19) <- 0
  end
  else begin
    Array.fill p 0 ((2 * k) + 2) 0;
    for i = 0 to k - 1 do
      let xi = Array.unsafe_get x i in
      let c = ref 0 in
      for j = 0 to k - 1 do
        let s =
          Array.unsafe_get p (i + j) + (xi * Array.unsafe_get y j) + !c
        in
        Array.unsafe_set p (i + j) (s land hmask);
        c := s lsr hbits
      done;
      Array.unsafe_set p (i + k) !c
    done
  end;
  mont_redc p ctx.mh k mo.n0;
  mont_finish ctx st dst

(* dst := x^2 * R^-1 mod m, via the dedicated squaring kernel at k = 9. *)
let mont_sqr ctx mo st (x : int array) (dst : int array) =
  let k = ctx.hk in
  if k = 9 then begin
    let p = st.prod in
    sqr9 p x;
    p.(18) <- 0;
    p.(19) <- 0;
    mont_redc p ctx.mh k mo.n0;
    mont_finish ctx st dst
  end
  else mont_mul ctx mo st x x dst

(* dst := x * R^-1 mod m (domain exit: REDC of the bare value). *)
let mont_exit ctx mo st (x : int array) (dst : int array) =
  let k = ctx.hk in
  let p = st.prod in
  Array.blit x 0 p 0 k;
  Array.fill p k (k + 2) 0;
  mont_redc p ctx.mh k mo.n0;
  mont_finish ctx st dst

(* --- dispatch ----------------------------------------------------------- *)

let reduce ctx x =
  if Nat.compare x ctx.modulus < 0 then x
  else begin
    match ctx.strategy with
    | Barrett | Montgomery -> reduce_barrett ctx x
    | Secp256k1 | P256 ->
      if Nat.bit_length x > 512 then Nat.rem x ctx.modulus
      else begin
        let st = Domain.DLS.get scratch_key in
        let n = unpack_halves st x st.prod ~pad:0 in
        match ctx.strategy with
        | Secp256k1 -> reduce_secp256k1 ctx st n
        | _ -> reduce_p256 ctx st n
      end
  end

let add ctx a b =
  let s = Nat.add a b in
  if Nat.compare s ctx.modulus >= 0 then Nat.sub s ctx.modulus else s

let sub ctx a b =
  if Nat.compare a b >= 0 then Nat.sub a b
  else Nat.sub (Nat.add a ctx.modulus) b

let neg ctx a = if Nat.is_zero a then a else Nat.sub ctx.modulus a

(* Standard-domain multiplication via one REDC pair:
   REDC(REDC(a*b) * RR) = a*b mod m. The first REDC may use the
   squaring kernel when a == b. *)
let mul_via_mont ctx mo st ~square a b =
  let _ = unpack_halves st a st.xa ~pad:ctx.hk in
  ignore
    (if square then mont_sqr ctx mo st st.xa st.ra
     else begin
       let _ = unpack_halves st b st.xb ~pad:ctx.hk in
       mont_mul ctx mo st st.xa st.xb st.ra
     end);
  let n = mont_mul ctx mo st st.ra mo.rr_h st.ra in
  pack_halves st st.ra ~off:0 n

(* Multiplication of residues: the fast paths write the flattened
   product straight into the reduction scratch, skipping the
   intermediate Nat allocation that the Barrett path pays. *)
let mul ctx a b =
  match ctx.strategy with
  | Barrett -> reduce_barrett ctx (Nat.mul a b)
  | Secp256k1 | P256 ->
    if Nat.compare a ctx.modulus >= 0 || Nat.compare b ctx.modulus >= 0 then
      (* out-of-contract inputs: reduce first, stay correct *)
      Nat.rem (Nat.mul a b) ctx.modulus
    else begin
      let st = Domain.DLS.get scratch_key in
      let _ = unpack_halves st a st.xa ~pad:9 in
      let _ = unpack_halves st b st.xb ~pad:9 in
      mul9 st.prod st.xa st.xb;
      (* mul9 writes all 18 halves; no need to trim before folding *)
      if ctx.strategy == Secp256k1 then reduce_secp256k1 ctx st 18
      else reduce_p256 ctx st 18
    end
  | Montgomery ->
    let mo = match ctx.mont with Some m -> m | None -> assert false in
    let a = if Nat.compare a ctx.modulus >= 0 then reduce ctx a else a in
    let b = if Nat.compare b ctx.modulus >= 0 then reduce ctx b else b in
    let st = Domain.DLS.get scratch_key in
    mul_via_mont ctx mo st ~square:false a b

(* Dedicated squaring: the fast curve fields use the unrolled [sqr9]
   (45 + 9 multiplications instead of 81); Montgomery moduli route the
   first REDC through the squaring kernel. *)
let sqr ctx a =
  match ctx.strategy with
  | Barrett -> reduce_barrett ctx (Nat.mul a a)
  | Secp256k1 | P256 ->
    if Nat.compare a ctx.modulus >= 0 then Nat.rem (Nat.mul a a) ctx.modulus
    else begin
      let st = Domain.DLS.get scratch_key in
      let _ = unpack_halves st a st.xa ~pad:9 in
      sqr9 st.prod st.xa;
      if ctx.strategy == Secp256k1 then reduce_secp256k1 ctx st 18
      else reduce_p256 ctx st 18
    end
  | Montgomery ->
    let mo = match ctx.mont with Some m -> m | None -> assert false in
    let a = if Nat.compare a ctx.modulus >= 0 then reduce ctx a else a in
    let st = Domain.DLS.get scratch_key in
    mul_via_mont ctx mo st ~square:true a Nat.zero

let double ctx a = add ctx a a

(* Square-and-multiply. With a Montgomery domain available (any odd
   fast modulus, curve fields included) the whole chain runs inside the
   domain: one entry, one [sqr9]-backed REDC per squaring, one exit —
   Montgomery inversion when called from Fermat [inv]. *)
let pow ctx b e =
  match ctx.mont with
  | Some mo ->
    let b = reduce ctx b in
    let st = Domain.DLS.get scratch_key in
    let k = ctx.hk in
    let _ = unpack_halves st b st.xb ~pad:k in
    let _ = mont_mul ctx mo st st.xb mo.rr_h st.xb in   (* enter domain *)
    Array.blit mo.r1_h 0 st.ra 0 k;                     (* acc := mont 1 *)
    for i = Nat.bit_length e - 1 downto 0 do
      let _ = mont_sqr ctx mo st st.ra st.ra in
      if Nat.testbit e i then
        ignore (mont_mul ctx mo st st.ra st.xb st.ra)
    done;
    let n = mont_exit ctx mo st st.ra st.ra in
    pack_halves st st.ra ~off:0 n
  | None ->
    let n = Nat.bit_length e in
    let b = reduce ctx b in
    let r = ref Nat.one in
    for i = n - 1 downto 0 do
      r := sqr ctx !r;
      if Nat.testbit e i then r := mul ctx !r b
    done;
    !r

let inv ctx a =
  let a = reduce ctx a in
  if Nat.is_zero a then raise Division_by_zero;
  if ctx.prime then pow ctx a (Nat.sub ctx.modulus Nat.two)
  else begin
    (* extended Euclid with signed coefficients tracked as (sign, nat) *)
    let rec go r0 r1 (s0_neg, s0) (s1_neg, s1) =
      if Nat.is_zero r1 then begin
        if not (Nat.equal r0 Nat.one) then raise Division_by_zero;
        if s0_neg then Nat.sub ctx.modulus (Nat.rem s0 ctx.modulus)
        else Nat.rem s0 ctx.modulus
      end else begin
        let q, r2 = Nat.divmod r0 r1 in
        (* s2 = s0 - q*s1 *)
        let qs1 = Nat.mul q s1 in
        let s2 =
          if s0_neg = s1_neg then begin
            if Nat.compare s0 qs1 >= 0 then (s0_neg, Nat.sub s0 qs1)
            else (not s0_neg, Nat.sub qs1 s0)
          end else (s0_neg, Nat.add s0 qs1)
        in
        go r1 r2 (s1_neg, s1) s2
      end
    in
    go ctx.modulus a (false, Nat.zero) (false, Nat.one)
  end

let of_nat = reduce

let of_int ctx n = reduce ctx (Nat.of_int n)

(* Map a byte string to a residue (used for hash-to-scalar). *)
let of_bytes_be ctx s = reduce ctx (Nat.of_bytes_be s)

(* --- explicit Montgomery-domain API ------------------------------------ *)

let has_montgomery ctx = ctx.mont <> None

let get_mont ctx op =
  match ctx.mont with
  | Some mo -> mo
  | None ->
    invalid_arg
      (Printf.sprintf
         "Modular.%s: no Montgomery domain (modulus even, too large, or \
          ~fast:false)" op)

let to_mont ctx a =
  let mo = get_mont ctx "to_mont" in
  let a = reduce ctx a in
  let st = Domain.DLS.get scratch_key in
  let _ = unpack_halves st a st.xa ~pad:ctx.hk in
  let n = mont_mul ctx mo st st.xa mo.rr_h st.ra in
  pack_halves st st.ra ~off:0 n

let of_mont ctx a =
  let mo = get_mont ctx "of_mont" in
  let a = reduce ctx a in
  let st = Domain.DLS.get scratch_key in
  let _ = unpack_halves st a st.xa ~pad:ctx.hk in
  let n = mont_exit ctx mo st st.xa st.ra in
  pack_halves st st.ra ~off:0 n

let mul_mont ctx a b =
  let mo = get_mont ctx "mul_mont" in
  let a = reduce ctx a and b = reduce ctx b in
  let st = Domain.DLS.get scratch_key in
  let _ = unpack_halves st a st.xa ~pad:ctx.hk in
  let _ = unpack_halves st b st.xb ~pad:ctx.hk in
  let n = mont_mul ctx mo st st.xa st.xb st.ra in
  pack_halves st st.ra ~off:0 n

let sqr_mont ctx a =
  let mo = get_mont ctx "sqr_mont" in
  let a = reduce ctx a in
  let st = Domain.DLS.get scratch_key in
  let _ = unpack_halves st a st.xa ~pad:ctx.hk in
  let n = mont_sqr ctx mo st st.xa st.ra in
  pack_halves st st.ra ~off:0 n
