(** Modular arithmetic over a fixed modulus, with a reduction strategy
    selected at [create] time.

    The two curve field primes the system uses get specialized
    reductions — pseudo-Mersenne folding for secp256k1's
    [p = 2^256 - 2^32 - 977] and the FIPS 186-4 word-sliding reduction
    for NIST P-256 — running over reused scratch buffers (no per-op
    allocation in the inner loop). Any other odd modulus (notably both
    curve orders) gets a Montgomery domain: products are reduced by
    absorbing one quotient digit per 31-bit half-limb instead of by
    Barrett's double multiplication, and [pow]/[inv] run their whole
    square-and-multiply chain inside the domain. Even or oversized
    moduli — and every modulus under [~fast:false] — fall back to
    Barrett reduction. A [ctx] captures the modulus plus the precomputed
    constants; create it once and reuse it for every operation.

    The fast paths' scratch buffers are domain-local ([Domain.DLS]),
    so a [ctx] is immutable shared data: any number of domains may use
    the same context concurrently, each borrowing its own domain's
    scratch per call.

    All binary operations expect reduced residues (in [0, modulus));
    [reduce] and [of_nat] bring arbitrary naturals into range. *)

type ctx

(** [create ?prime ?fast m] builds a context for modulus [m >= 2]. When
    [prime] is [true] (the default), [inv] uses Fermat's little theorem;
    pass [~prime:false] for composite moduli to use extended Euclid
    instead. When [fast] is [true] (the default) the specialized
    reduction is selected for recognized primes and a Montgomery domain
    for other odd moduli; [~fast:false] forces Barrett everywhere — the
    reference the differential tests and the seed-baseline benchmarks
    compare against. *)
val create : ?prime:bool -> ?fast:bool -> Nat.t -> ctx

val modulus : ctx -> Nat.t

(** Which reduction strategy [create] selected: ["barrett"],
    ["pseudo-mersenne-secp256k1"], ["word-sliding-p256"], or
    ["montgomery"]. *)
val reduction_name : ctx -> string

(** Reduce an arbitrary natural modulo the modulus. Fast for any
    product of two residues; falls back to long division beyond that. *)
val reduce : ctx -> Nat.t -> Nat.t

val add : ctx -> Nat.t -> Nat.t -> Nat.t
val sub : ctx -> Nat.t -> Nat.t -> Nat.t
val neg : ctx -> Nat.t -> Nat.t
val mul : ctx -> Nat.t -> Nat.t -> Nat.t

(** [sqr ctx a] is [mul ctx a a] through a dedicated squaring kernel
    (cross products computed once and doubled). *)
val sqr : ctx -> Nat.t -> Nat.t

val double : ctx -> Nat.t -> Nat.t

(** [pow ctx b e] is [b^e mod m] by square-and-multiply; when the
    context has a Montgomery domain the chain enters the domain once
    and exits once. *)
val pow : ctx -> Nat.t -> Nat.t -> Nat.t

(** Multiplicative inverse — Montgomery-backed Fermat for primes with a
    domain, extended Euclid otherwise. Raises [Division_by_zero] on
    zero or non-invertible arguments. *)
val inv : ctx -> Nat.t -> Nat.t

val of_nat : ctx -> Nat.t -> Nat.t
val of_int : ctx -> int -> Nat.t

(** Interpret a big-endian byte string as a residue. *)
val of_bytes_be : ctx -> string -> Nat.t

(** {2 Explicit Montgomery domain}

    Available when the modulus is odd, at most 1023 bits, and the
    context was created with [~fast:true] (the default) — this includes
    both curve fields and both curve orders. The domain image of a
    residue [x] is [x * R mod m] with [R = 2^(31 * ceil(bits / 31))];
    [mul_mont]/[sqr_mont] keep operands in that form so chained
    operations pay one REDC each instead of a full enter/exit pair.
    The standard [mul]/[sqr]/[pow] above already use the domain
    internally; this API is for callers that batch conversions.

    The functions below raise [Invalid_argument] when the context has
    no Montgomery domain ([has_montgomery ctx = false]).

    The domain form of a residue is just a re-encoding (multiplication
    by a public constant), so a secret residue's domain image is
    equally secret: the entry points are annotated as taint sources so
    R7 tracks any flow of domain values into comparison, wire, or
    vartime sinks conservatively. *)

(* lint: public — a capability flag: reveals only the modulus shape *)
val has_montgomery : ctx -> bool

(** [to_mont ctx x] is [x * R mod m] (domain entry). *)
(* lint: secret *)
val to_mont : ctx -> Nat.t -> Nat.t

(** [of_mont ctx x] is [x * R^-1 mod m] (domain exit);
    [of_mont (to_mont x) = reduce x]. *)
(* lint: secret *)
val of_mont : ctx -> Nat.t -> Nat.t

(** [mul_mont ctx x y] is [x * y * R^-1 mod m]: the product of two
    domain images, still in the domain. *)
(* lint: secret *)
val mul_mont : ctx -> Nat.t -> Nat.t -> Nat.t

(** [sqr_mont ctx x] is [x^2 * R^-1 mod m] through the dedicated
    squaring kernel. *)
(* lint: secret *)
val sqr_mont : ctx -> Nat.t -> Nat.t
