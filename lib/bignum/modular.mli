(** Modular arithmetic over a fixed modulus, with a reduction strategy
    selected at [create] time.

    The two curve field primes the system uses get specialized
    reductions — pseudo-Mersenne folding for secp256k1's
    [p = 2^256 - 2^32 - 977] and the FIPS 186-4 word-sliding reduction
    for NIST P-256 — running over reused scratch buffers (no per-op
    allocation in the inner loop). Any other modulus (including both
    curve orders) falls back to Barrett reduction. A [ctx] captures the
    modulus plus the precomputed constants and scratch; create it once
    and reuse it for every operation.

    The fast paths' scratch buffers are domain-local ([Domain.DLS]),
    so a [ctx] is immutable shared data: any number of domains may use
    the same context concurrently, each borrowing its own domain's
    scratch per call.

    All binary operations expect reduced residues (in [0, modulus));
    [reduce] and [of_nat] bring arbitrary naturals into range. *)

type ctx

(** [create ?prime ?fast m] builds a context for modulus [m >= 2]. When
    [prime] is [true] (the default), [inv] uses Fermat's little theorem;
    pass [~prime:false] for composite moduli to use extended Euclid
    instead. When [fast] is [true] (the default) the specialized
    reduction is selected for recognized primes; [~fast:false] forces
    Barrett everywhere — the reference the differential tests and the
    seed-baseline benchmarks compare against. *)
val create : ?prime:bool -> ?fast:bool -> Nat.t -> ctx

val modulus : ctx -> Nat.t

(** Which reduction strategy [create] selected: ["barrett"],
    ["pseudo-mersenne-secp256k1"], or ["word-sliding-p256"]. *)
val reduction_name : ctx -> string

(** Reduce an arbitrary natural modulo the modulus. Fast for any
    product of two residues; falls back to long division beyond that. *)
val reduce : ctx -> Nat.t -> Nat.t

val add : ctx -> Nat.t -> Nat.t -> Nat.t
val sub : ctx -> Nat.t -> Nat.t -> Nat.t
val neg : ctx -> Nat.t -> Nat.t
val mul : ctx -> Nat.t -> Nat.t -> Nat.t
val sqr : ctx -> Nat.t -> Nat.t
val double : ctx -> Nat.t -> Nat.t

(** [pow ctx b e] is [b^e mod m] by square-and-multiply. *)
val pow : ctx -> Nat.t -> Nat.t -> Nat.t

(** Multiplicative inverse. Raises [Division_by_zero] on zero or
    non-invertible arguments. *)
val inv : ctx -> Nat.t -> Nat.t

val of_nat : ctx -> Nat.t -> Nat.t
val of_int : ctx -> int -> Nat.t

(** Interpret a big-endian byte string as a residue. *)
val of_bytes_be : ctx -> string -> Nat.t
