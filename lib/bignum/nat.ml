(* Little-endian arrays of 30-bit limbs, normalized: the most significant
   limb is non-zero, and zero is the empty array. 30-bit limbs leave
   headroom in OCaml's 63-bit native ints for the schoolbook inner loop
   (acc + a*b + carry < 2^61). *)

type t = int array

let base_bits = 30
let base = 1 lsl base_bits
let limb_mask = base - 1

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let is_zero (a : t) = Array.length a = 0

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

(* --- limb-level kernels -----------------------------------------------

   Allocation-free building blocks over raw little-endian limb buffers,
   used by [Modular]'s specialized reductions and by [divmod]. A buffer
   is a plain [int array] paired with a significant-limb count; limbs
   beyond the count may hold stale garbage (kernels read guarded and
   write unconditionally). *)

let trim_limbs (buf : int array) n =
  let n = ref n in
  while !n > 0 && buf.(!n - 1) = 0 do decr n done;
  !n

let of_limbs (buf : int array) n : t =
  let n = trim_limbs buf n in
  Array.sub buf 0 n

let to_limbs_into (a : t) (buf : int array) =
  Array.blit a 0 buf 0 (Array.length a);
  Array.length a

let compare_limbs (a : int array) na (b : int array) nb =
  if na <> nb then Int.compare na nb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Int.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (na - 1)
  end

(* The kernels below use unchecked array access: the counts they are
   handed bound every index, and the documented buffer-size
   preconditions make those bounds the caller's obligation. Bounds
   checks here cost ~30% of a field multiplication. *)

(* dst := dst + src. [dst] must have room for [max ndst nsrc + 1] limbs. *)
let add_into (dst : int array) ndst (src : int array) nsrc =
  let m = if ndst > nsrc then ndst else nsrc in
  let carry = ref 0 in
  for i = 0 to m - 1 do
    let av = if i < ndst then Array.unsafe_get dst i else 0
    and bv = if i < nsrc then Array.unsafe_get src i else 0 in
    let s = av + bv + !carry in
    Array.unsafe_set dst i (s land limb_mask);
    carry := s lsr base_bits
  done;
  if !carry <> 0 then begin dst.(m) <- !carry; m + 1 end else m

(* dst := dst - src; requires dst >= src numerically. *)
let sub_into (dst : int array) ndst (src : int array) nsrc =
  let borrow = ref 0 in
  for i = 0 to ndst - 1 do
    let bv = if i < nsrc then Array.unsafe_get src i else 0 in
    let d = Array.unsafe_get dst i - bv - !borrow in
    if d < 0 then begin Array.unsafe_set dst i (d + base); borrow := 1 end
    else begin Array.unsafe_set dst i d; borrow := 0 end
  done;
  trim_limbs dst ndst

(* dst := dst + (src * m) << (shift limbs), fused in one pass — the
   pseudo-Mersenne fold's workhorse (no intermediate product buffer).
   Requires 0 <= m < 2^32 so m * limb + carry stays in the native-int
   headroom, and room for max(ndst, nsrc + shift) + 1 limbs. *)
let addmul1_into (dst : int array) ndst (src : int array) nsrc ~shift m =
  for j = ndst to shift - 1 do dst.(j) <- 0 done;
  let carry = ref 0 in
  for i = 0 to nsrc - 1 do
    let j = i + shift in
    let cur = if j < ndst then Array.unsafe_get dst j else 0 in
    let t = cur + (m * Array.unsafe_get src i) + !carry in
    Array.unsafe_set dst j (t land limb_mask);
    carry := t lsr base_bits
  done;
  let j = ref (nsrc + shift) in
  while !carry <> 0 do
    let cur = if !j < ndst then Array.unsafe_get dst !j else 0 in
    let t = cur + !carry in
    Array.unsafe_set dst !j (t land limb_mask);
    carry := t lsr base_bits;
    incr j
  done;
  trim_limbs dst (if !j > ndst then !j else ndst)

(* dst := a * b (schoolbook). [dst] must not alias [a] or [b] and must
   have room for [na + nb] limbs. *)
let mul_limbs_into (dst : int array) (a : int array) na (b : int array) nb =
  if na = 0 || nb = 0 then 0
  else begin
    Array.fill dst 0 (na + nb) 0;
    for i = 0 to na - 1 do
      let ai = Array.unsafe_get a i in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to nb - 1 do
          let t =
            Array.unsafe_get dst (i + j) + (ai * Array.unsafe_get b j) + !carry
          in
          Array.unsafe_set dst (i + j) (t land limb_mask);
          carry := t lsr base_bits
        done;
        let k = ref (i + nb) in
        while !carry <> 0 do
          let t = Array.unsafe_get dst !k + !carry in
          Array.unsafe_set dst !k (t land limb_mask);
          carry := t lsr base_bits;
          incr k
        done
      end
    done;
    trim_limbs dst (na + nb)
  end

let mul_into (dst : int array) (a : t) (b : t) =
  mul_limbs_into dst a (Array.length a) b (Array.length b)

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative";
  let rec limbs n acc = if n = 0 then acc else limbs (n lsr base_bits) ((n land limb_mask) :: acc) in
  normalize (Array.of_list (List.rev (limbs n [])))

let to_int (a : t) =
  let len = Array.length a in
  if len > 3 then invalid_arg "Nat.to_int: too large";
  let v = ref 0 in
  for i = len - 1 downto 0 do
    if !v > max_int lsr base_bits then invalid_arg "Nat.to_int: too large";
    v := (!v lsl base_bits) lor a.(i)
  done;
  !v

(* Explicit limb loop, not polymorphic [=]: the polymorphic comparator
   walks the runtime representation generically (boxing checks per
   element), an order of magnitude slower on the hot paths that compare
   field residues. *)
let equal (a : t) (b : t) =
  let la = Array.length a in
  la = Array.length b
  && begin
    let rec go i = i < 0 || (a.(i) = b.(i) && go (i - 1)) in
    go (la - 1)
  end

let compare (a : t) (b : t) = compare_limbs a (Array.length a) b (Array.length b)

let bit_length (a : t) =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let rec width n = if n = 0 then 0 else 1 + width (n lsr 1) in
    (la - 1) * base_bits + width top
  end

let testbit (a : t) i =
  let limb = i / base_bits and off = i mod base_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let is_odd (a : t) = testbit a 0

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let av = if i < la then a.(i) else 0 and bv = if i < lb then b.(i) else 0 in
    let s = av + bv + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr base_bits
  done;
  normalize r

let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Nat.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bv = if i < lb then b.(i) else 0 in
    let d = a.(i) - bv - !borrow in
    if d < 0 then begin r.(i) <- d + base; borrow := 1 end
    else begin r.(i) <- d; borrow := 0 end
  done;
  normalize r

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    let n = mul_limbs_into r a la b lb in
    if n = la + lb then r else Array.sub r 0 n
  end

let sqr a = mul a a

let shift_left (a : t) n =
  if n < 0 then invalid_arg "Nat.shift_left: negative shift";
  if is_zero a || n = 0 then a
  else begin
    let limbs = n / base_bits and bits = n mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- v lsr base_bits
    done;
    normalize r
  end

let shift_right (a : t) n =
  if n < 0 then invalid_arg "Nat.shift_right: negative shift";
  if is_zero a || n = 0 then a
  else begin
    let limbs = n / base_bits and bits = n mod base_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let lr = la - limbs in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = a.(i + limbs) lsr bits in
        let hi = if i + limbs + 1 < la then (a.(i + limbs + 1) lsl (base_bits - bits)) land limb_mask else 0 in
        r.(i) <- if bits = 0 then a.(i + limbs) else lo lor hi
      done;
      normalize r
    end
  end

(* Long division. Single-limb divisors divide limb-by-limb; the general
   case is Knuth's Algorithm D: normalize so the divisor's top limb has
   its high bit set, estimate each quotient limb from the top two limbs
   of the running remainder (62-bit native division), correct by at most
   two decrements plus a rare add-back. O(la * lb) limb operations. *)
let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    (* fast path: single-limb divisor *)
    let d = b.(0) in
    let la = Array.length a in
    let q = Array.make la 0 in
    let r = ref 0 in
    for i = la - 1 downto 0 do
      let cur = (!r lsl base_bits) lor a.(i) in
      q.(i) <- cur / d;
      r := cur mod d
    done;
    (normalize q, of_int !r)
  end
  else begin
    (* Algorithm D; here Array.length b >= 2 and a >= b *)
    let lb = Array.length b in
    let top_width =
      let rec width n = if n = 0 then 0 else 1 + width (n lsr 1) in
      width b.(lb - 1)
    in
    let shift = base_bits - top_width in
    let v = shift_left b shift in           (* v.(n-1) >= base/2 *)
    let u_nat = shift_left a shift in
    let n = Array.length v in
    let lu = Array.length u_nat in
    let m = lu - n in                        (* >= 0 *)
    let u = Array.make (lu + 1) 0 in
    Array.blit u_nat 0 u 0 lu;
    let q = Array.make (m + 1) 0 in
    let vh = v.(n - 1) and vl = v.(n - 2) in
    for j = m downto 0 do
      (* estimate q.(j) from the top two remainder limbs *)
      let top2 = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
      let qhat = ref (top2 / vh) and rhat = ref (top2 mod vh) in
      if !qhat >= base then begin
        rhat := !rhat + ((!qhat - (base - 1)) * vh);
        qhat := base - 1
      end;
      while
        !rhat < base && !qhat * vl > (!rhat lsl base_bits) lor u.(j + n - 2)
      do
        decr qhat;
        rhat := !rhat + vh
      done;
      (* multiply-subtract: u[j .. j+n] -= qhat * v *)
      let carry = ref 0 and borrow = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr base_bits;
        let d = u.(i + j) - (p land limb_mask) - !borrow in
        if d < 0 then begin u.(i + j) <- d + base; borrow := 1 end
        else begin u.(i + j) <- d; borrow := 0 end
      done;
      let d = u.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* estimate was one too high (rare): add the divisor back *)
        u.(j + n) <- d + base;
        decr qhat;
        let c = ref 0 in
        for i = 0 to n - 1 do
          let s = u.(i + j) + v.(i) + !c in
          u.(i + j) <- s land limb_mask;
          c := s lsr base_bits
        done;
        u.(j + n) <- (u.(j + n) + !c) land limb_mask
      end
      else u.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = normalize (Array.sub u 0 n) in
    (normalize q, shift_right r shift)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let of_bytes_be s =
  let n = String.length s in
  let r = ref zero in
  for i = 0 to n - 1 do
    r := add (shift_left !r 8) (of_int (Char.code s.[i]))
  done;
  !r

let to_bytes_be ?len (a : t) =
  let nbytes = (bit_length a + 7) / 8 in
  let out_len = match len with
    | None -> if nbytes = 0 then 1 else nbytes
    | Some l ->
      if nbytes > l then invalid_arg "Nat.to_bytes_be: value too large for len";
      l
  in
  let buf = Bytes.make out_len '\000' in
  for i = 0 to nbytes - 1 do
    (* byte i counted from the least significant end *)
    let bit = i * 8 in
    let limb = bit / base_bits and off = bit mod base_bits in
    let v = a.(limb) lsr off in
    let v = if off + 8 > base_bits && limb + 1 < Array.length a
      then v lor (a.(limb + 1) lsl (base_bits - off))
      else v
    in
    Bytes.set buf (out_len - 1 - i) (Char.chr (v land 0xff))
  done;
  Bytes.unsafe_to_string buf

let of_hex s =
  let digit c = match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Nat.of_hex: bad digit"
  in
  let r = ref zero in
  String.iter (fun c -> r := add (shift_left !r 4) (of_int (digit c))) s;
  !r

let to_hex (a : t) =
  if is_zero a then "0"
  else begin
    let nhex = (bit_length a + 3) / 4 in
    let buf = Bytes.create nhex in
    for i = 0 to nhex - 1 do
      let bit = i * 4 in
      let limb = bit / base_bits and off = bit mod base_bits in
      let v = (a.(limb) lsr off) land 0xf in
      (* a nibble never straddles a 30-bit limb boundary? 30 mod 4 = 2, so
         it can: pull the high bits from the next limb when needed. *)
      let v = if off + 4 > base_bits && limb + 1 < Array.length a
        then (v lor (a.(limb + 1) lsl (base_bits - off))) land 0xf
        else v
      in
      Bytes.set buf (nhex - 1 - i) "0123456789abcdef".[v]
    done;
    Bytes.unsafe_to_string buf
  end

let ten = of_int 10

let of_decimal s =
  if String.length s = 0 then invalid_arg "Nat.of_decimal: empty";
  let r = ref zero in
  String.iter (fun c ->
      match c with
      | '0' .. '9' -> r := add (mul !r ten) (of_int (Char.code c - Char.code '0'))
      | _ -> invalid_arg "Nat.of_decimal: bad digit")
    s;
  !r

let to_decimal (a : t) =
  if is_zero a then "0"
  else begin
    let chunk = of_int 1_000_000_000 in
    let rec go a acc =
      if is_zero a then acc
      else begin
        let q, r = divmod a chunk in
        let part = to_int r in
        if is_zero q then string_of_int part :: acc
        else go q (Printf.sprintf "%09d" part :: acc)
      end
    in
    String.concat "" (go a [])
  end

let pp fmt a = Format.pp_print_string fmt (to_decimal a)
