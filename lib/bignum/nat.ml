(* Little-endian arrays of 62-bit limbs, normalized: the most significant
   limb is non-zero, and zero is the empty array.

   62-bit limbs halve the limb count of every linear pass (add, sub,
   compare, shift, codec) relative to the 30-bit representation this
   module started with. A 62x62 product does not fit a 63-bit native
   int, so the multiplicative kernels (schoolbook multiply, addmul1,
   long division) split each limb into two 31-bit halves and work in
   that half-limb space, where the schoolbook accumulation
   acc + a*b + carry <= (2^31-1) + (2^31-1)^2 + (2^31-1) = 2^62-1
   exactly fills the native-int range. 62 = 2*31, so the half-limb view
   of a value is just its limbs split in two — no repacking shift.

   Some 62-bit linear kernels intentionally let native ints wrap:
   a + b + carry for a, b < 2^62 can exceed max_int, but the low 63 bits
   of the two's-complement result are exact, so [s land limb_mask]
   extracts the limb and [s lsr 62] the carry (OCaml ints wrap on
   overflow by language definition). *)

type t = int array

(* 62-bit limbs assume 63-bit native ints: this library requires a
   64-bit platform. Fail loudly at load time instead of corrupting
   arithmetic on 32-bit / JS backends. *)
let () =
  if Sys.int_size < 63 then
    failwith
      "Dd_bignum.Nat: 62-bit limbs require 63-bit native ints \
       (64-bit platform); Sys.int_size is too small"

let base_bits = 62
let limb_mask = (1 lsl base_bits) - 1   (* = max_int on 63-bit ints *)

(* Half-limb view used by the multiplicative kernels. *)
let hbits = base_bits / 2               (* 31 *)
let hmask = (1 lsl hbits) - 1

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let is_zero (a : t) = Array.length a = 0

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

(* --- limb-level kernels -----------------------------------------------

   Building blocks over raw little-endian limb buffers, used by
   [Modular]'s specialized reductions and by [divmod]. A buffer is a
   plain [int array] paired with a significant-limb count; limbs beyond
   the count may hold stale garbage (kernels read guarded and write
   unconditionally). The linear kernels are allocation-free; the
   schoolbook multiply allocates internal half-limb scratch (its callers
   are cold paths — [Modular]'s hot paths use their own fixed-width
   half-limb kernels). *)

let trim_limbs (buf : int array) n =
  let n = ref n in
  while !n > 0 && buf.(!n - 1) = 0 do decr n done;
  !n

let of_limbs (buf : int array) n : t =
  let n = trim_limbs buf n in
  Array.sub buf 0 n

let to_limbs_into (a : t) (buf : int array) =
  Array.blit a 0 buf 0 (Array.length a);
  Array.length a

let compare_limbs (a : int array) na (b : int array) nb =
  if na <> nb then Int.compare na nb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Int.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (na - 1)
  end

(* The kernels below use unchecked array access: the counts they are
   handed bound every index, and the documented buffer-size
   preconditions make those bounds the caller's obligation. Bounds
   checks here cost ~30% of a field multiplication. *)

(* dst := dst + src. [dst] must have room for [max ndst nsrc + 1] limbs. *)
let add_into (dst : int array) ndst (src : int array) nsrc =
  let m = if ndst > nsrc then ndst else nsrc in
  let carry = ref 0 in
  for i = 0 to m - 1 do
    let av = if i < ndst then Array.unsafe_get dst i else 0
    and bv = if i < nsrc then Array.unsafe_get src i else 0 in
    let s = av + bv + !carry in          (* may wrap; low bits exact *)
    Array.unsafe_set dst i (s land limb_mask);
    carry := s lsr base_bits
  done;
  if !carry <> 0 then begin dst.(m) <- !carry; m + 1 end else m

(* dst := dst - src; requires dst >= src numerically. *)
let sub_into (dst : int array) ndst (src : int array) nsrc =
  let borrow = ref 0 in
  for i = 0 to ndst - 1 do
    let bv = if i < nsrc then Array.unsafe_get src i else 0 in
    let d = Array.unsafe_get dst i - bv - !borrow in
    (* d in (-2^62, 2^62); bit 62 of the two's-complement pattern is the
       sign, so [d lsr 62] is the borrow and [d land limb_mask] the limb. *)
    Array.unsafe_set dst i (d land limb_mask);
    borrow := d lsr base_bits
  done;
  trim_limbs dst ndst

(* dst := dst + (src * m) << (shift limbs), fused in one pass — the
   pseudo-Mersenne fold's workhorse (no intermediate product buffer).
   Requires 0 <= m < 2^31 so each half-limb product m * half + carry
   stays within native-int headroom, and room for
   max(ndst, nsrc + shift) + 1 limbs. Each 62-bit limb is processed as
   two 31-bit halves with a half-limb carry (carry < 2^31 throughout). *)
let addmul1_into (dst : int array) ndst (src : int array) nsrc ~shift m =
  for j = ndst to shift - 1 do dst.(j) <- 0 done;
  let carry = ref 0 in                   (* half-limb carry, < 2^31 *)
  for i = 0 to nsrc - 1 do
    let j = i + shift in
    let cur = if j < ndst then Array.unsafe_get dst j else 0 in
    let s = Array.unsafe_get src i in
    let t0 = (cur land hmask) + (m * (s land hmask)) + !carry in
    let t1 = (cur lsr hbits) + (m * (s lsr hbits)) + (t0 lsr hbits) in
    Array.unsafe_set dst j ((t0 land hmask) lor ((t1 land hmask) lsl hbits));
    carry := t1 lsr hbits
  done;
  let j = ref (nsrc + shift) in
  while !carry <> 0 do
    let cur = if !j < ndst then Array.unsafe_get dst !j else 0 in
    let t = cur + !carry in
    Array.unsafe_set dst !j (t land limb_mask);
    carry := t lsr base_bits;
    incr j
  done;
  trim_limbs dst (if !j > ndst then !j else ndst)

(* --- half-limb helpers (internal) -------------------------------------

   31-bit half-limb buffers for multiplication and division, where every
   product fits a native int. [halves_of_limbs] splits each 62-bit limb
   into (low 31, high 31); since 62 = 2*31 the two views describe the
   same bit string. *)

let halves_of_limbs (a : int array) na (h : int array) =
  for i = 0 to na - 1 do
    let v = Array.unsafe_get a i in
    Array.unsafe_set h (2 * i) (v land hmask);
    Array.unsafe_set h ((2 * i) + 1) (v lsr hbits)
  done;
  trim_limbs h (2 * na)

let limbs_of_halves (h : int array) nh (dst : int array) =
  let nl = (nh + 1) / 2 in
  for i = 0 to nl - 1 do
    let lo = if 2 * i < nh then Array.unsafe_get h (2 * i) else 0 in
    let hi = if (2 * i) + 1 < nh then Array.unsafe_get h ((2 * i) + 1) else 0 in
    Array.unsafe_set dst i (lo lor (hi lsl hbits))
  done;
  trim_limbs dst nl

(* Schoolbook product over half-limb buffers: dst := a * b, where dst
   has room for na + nb halves and does not alias the inputs. *)
let mul_halves_into (dst : int array) (a : int array) na (b : int array) nb =
  if na = 0 || nb = 0 then 0
  else begin
    Array.fill dst 0 (na + nb) 0;
    for i = 0 to na - 1 do
      let ai = Array.unsafe_get a i in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to nb - 1 do
          let t =
            Array.unsafe_get dst (i + j) + (ai * Array.unsafe_get b j) + !carry
          in
          Array.unsafe_set dst (i + j) (t land hmask);
          carry := t lsr hbits
        done;
        let k = ref (i + nb) in
        while !carry <> 0 do
          let t = Array.unsafe_get dst !k + !carry in
          Array.unsafe_set dst !k (t land hmask);
          carry := t lsr hbits;
          incr k
        done
      end
    done;
    trim_limbs dst (na + nb)
  end

(* dst := a * b (schoolbook over 31-bit halves). [dst] must not alias
   [a] or [b] and must have room for [na + nb] limbs. Allocates internal
   half-limb scratch; hot callers should use half-limb kernels directly. *)
let mul_limbs_into (dst : int array) (a : int array) na (b : int array) nb =
  if na = 0 || nb = 0 then 0
  else begin
    let ha = Array.make (2 * na) 0 and hb = Array.make (2 * nb) 0 in
    let nha = halves_of_limbs a na ha and nhb = halves_of_limbs b nb hb in
    let hp = Array.make (nha + nhb) 0 in
    let nhp = mul_halves_into hp ha nha hb nhb in
    limbs_of_halves hp nhp dst
  end

let mul_into (dst : int array) (a : t) (b : t) =
  mul_limbs_into dst a (Array.length a) b (Array.length b)

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative";
  (* any non-negative int fits one 62-bit limb (max_int = 2^62 - 1) *)
  if n = 0 then zero else [| n |]

let to_int (a : t) =
  match Array.length a with
  | 0 -> 0
  | 1 -> a.(0)
  | _ -> invalid_arg "Nat.to_int: too large"

(* Explicit limb loop, not polymorphic [=]: the polymorphic comparator
   walks the runtime representation generically (boxing checks per
   element), an order of magnitude slower on the hot paths that compare
   field residues. *)
let equal (a : t) (b : t) =
  let la = Array.length a in
  la = Array.length b
  && begin
    let rec go i = i < 0 || (a.(i) = b.(i) && go (i - 1)) in
    go (la - 1)
  end

let compare (a : t) (b : t) = compare_limbs a (Array.length a) b (Array.length b)

let bit_length (a : t) =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let rec width n = if n = 0 then 0 else 1 + width (n lsr 1) in
    (la - 1) * base_bits + width top
  end

let testbit (a : t) i =
  let limb = i / base_bits and off = i mod base_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

let is_odd (a : t) = testbit a 0

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let av = if i < la then a.(i) else 0 and bv = if i < lb then b.(i) else 0 in
    let s = av + bv + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr base_bits
  done;
  normalize r

let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Nat.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bv = if i < lb then b.(i) else 0 in
    let d = a.(i) - bv - !borrow in
    r.(i) <- d land limb_mask;
    borrow := d lsr base_bits
  done;
  normalize r

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    let n = mul_limbs_into r a la b lb in
    if n = la + lb then r else Array.sub r 0 n
  end

let sqr a = mul a a

let shift_left (a : t) n =
  if n < 0 then invalid_arg "Nat.shift_left: negative shift";
  if is_zero a || n = 0 then a
  else begin
    let limbs = n / base_bits and bits = n mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    if bits = 0 then Array.blit a 0 r limbs la
    else
      for i = 0 to la - 1 do
        (* [v lsl bits] would silently drop high bits at 62-bit limbs:
           compute the low and spilled parts separately. *)
        r.(i + limbs) <- r.(i + limbs) lor ((a.(i) lsl bits) land limb_mask);
        r.(i + limbs + 1) <- a.(i) lsr (base_bits - bits)
      done;
    normalize r
  end

let shift_right (a : t) n =
  if n < 0 then invalid_arg "Nat.shift_right: negative shift";
  if is_zero a || n = 0 then a
  else begin
    let limbs = n / base_bits and bits = n mod base_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let lr = la - limbs in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = a.(i + limbs) lsr bits in
        let hi =
          if i + limbs + 1 < la then
            (a.(i + limbs + 1) lsl (base_bits - bits)) land limb_mask
          else 0
        in
        r.(i) <- if bits = 0 then a.(i + limbs) else lo lor hi
      done;
      normalize r
    end
  end

(* Long division over 31-bit half-limbs (a 62x62 quotient estimate would
   overflow the native int). Single-half divisors divide half-by-half;
   the general case is Knuth's Algorithm D at base 2^31: normalize so
   the divisor's top half has its high bit set, estimate each quotient
   half from the top two halves of the running remainder (62-bit native
   division), correct by at most two decrements plus a rare add-back.
   O(na * nb) half-limb operations. *)
let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else begin
    let la = Array.length a and lb = Array.length b in
    let ua = Array.make (2 * la) 0 and vb = Array.make (2 * lb) 0 in
    let nu = halves_of_limbs a la ua and nv = halves_of_limbs b lb vb in
    if nv = 1 then begin
      (* fast path: single-half divisor (< 2^31) *)
      let d = vb.(0) in
      let q = Array.make nu 0 in
      let r = ref 0 in
      for i = nu - 1 downto 0 do
        let cur = (!r lsl hbits) lor ua.(i) in
        q.(i) <- cur / d;
        r := cur mod d
      done;
      let qd = Array.make ((nu + 1) / 2) 0 in
      let nq = limbs_of_halves q nu qd in
      (of_limbs qd nq, of_int !r)
    end
    else begin
      (* Algorithm D; here nv >= 2 and a >= b *)
      let top_width =
        let rec width n = if n = 0 then 0 else 1 + width (n lsr 1) in
        width vb.(nv - 1)
      in
      let shift = hbits - top_width in
      (* normalize: v := b << shift (top half gains its high bit),
         u := a << shift with one extra half of headroom *)
      let v = Array.make nv 0 in
      let u = Array.make (nu + 2) 0 in
      if shift = 0 then begin
        Array.blit vb 0 v 0 nv;
        Array.blit ua 0 u 0 nu
      end
      else begin
        for i = nv - 1 downto 1 do
          v.(i) <-
            ((vb.(i) lsl shift) land hmask) lor (vb.(i - 1) lsr (hbits - shift))
        done;
        v.(0) <- (vb.(0) lsl shift) land hmask;
        u.(nu) <- ua.(nu - 1) lsr (hbits - shift);
        for i = nu - 1 downto 1 do
          u.(i) <-
            ((ua.(i) lsl shift) land hmask) lor (ua.(i - 1) lsr (hbits - shift))
        done;
        u.(0) <- (ua.(0) lsl shift) land hmask
      end;
      let n = nv in
      let m = trim_limbs u (nu + 1) - n in
      let m = if m < 0 then 0 else m in
      let q = Array.make (m + 1) 0 in
      let vh = v.(n - 1) and vl = v.(n - 2) in
      let hbase = 1 lsl hbits in
      for j = m downto 0 do
        (* estimate q.(j) from the top two remainder halves *)
        let top2 = (u.(j + n) lsl hbits) lor u.(j + n - 1) in
        let qhat = ref (top2 / vh) and rhat = ref (top2 mod vh) in
        if !qhat >= hbase then begin
          rhat := !rhat + ((!qhat - (hbase - 1)) * vh);
          qhat := hbase - 1
        end;
        while
          !rhat < hbase && !qhat * vl > (!rhat lsl hbits) lor u.(j + n - 2)
        do
          decr qhat;
          rhat := !rhat + vh
        done;
        (* multiply-subtract: u[j .. j+n] -= qhat * v *)
        let carry = ref 0 and borrow = ref 0 in
        for i = 0 to n - 1 do
          let p = (!qhat * v.(i)) + !carry in
          carry := p lsr hbits;
          let d = u.(i + j) - (p land hmask) - !borrow in
          u.(i + j) <- d land hmask;
          borrow := (d lsr hbits) land 1
        done;
        let d = u.(j + n) - !carry - !borrow in
        if d < 0 then begin
          (* estimate was one too high (rare): add the divisor back *)
          u.(j + n) <- d land hmask;
          decr qhat;
          let c = ref 0 in
          for i = 0 to n - 1 do
            let s = u.(i + j) + v.(i) + !c in
            u.(i + j) <- s land hmask;
            c := s lsr hbits
          done;
          u.(j + n) <- (u.(j + n) + !c) land hmask
        end
        else u.(j + n) <- d;
        q.(j) <- !qhat
      done;
      (* remainder: u[0 .. n-1] >> shift *)
      let nr = trim_limbs u n in
      let r = Array.make (if nr = 0 then 1 else nr) 0 in
      if shift = 0 then Array.blit u 0 r 0 nr
      else
        for i = 0 to nr - 1 do
          let lo = u.(i) lsr shift in
          let hi =
            if i + 1 < nr then (u.(i + 1) lsl (hbits - shift)) land hmask else 0
          in
          r.(i) <- lo lor hi
        done;
      let nr = trim_limbs r nr in
      let qd = Array.make ((m + 2) / 2) 0 in
      let nq = limbs_of_halves q (trim_limbs q (m + 1)) qd in
      let rd = Array.make ((nr + 2) / 2) 0 in
      let nrl = limbs_of_halves r nr rd in
      (of_limbs qd nq, of_limbs rd nrl)
    end
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

(* Byte / hex codecs pack digits directly into limb buffers, keyed only
   off [base_bits] — no per-digit bignum shifts, and no alignment
   assumption between the digit width and the limb width. *)

let of_bytes_be s =
  let n = String.length s in
  if n = 0 then zero
  else begin
    let nl = ((8 * n) + base_bits - 1) / base_bits in
    let r = Array.make nl 0 in
    for i = 0 to n - 1 do
      (* byte i counted from the least significant end *)
      let v = Char.code s.[n - 1 - i] in
      let bit = i * 8 in
      let limb = bit / base_bits and off = bit mod base_bits in
      r.(limb) <- r.(limb) lor ((v lsl off) land limb_mask);
      if off + 8 > base_bits then r.(limb + 1) <- r.(limb + 1) lor (v lsr (base_bits - off))
    done;
    normalize r
  end

let to_bytes_be ?len (a : t) =
  let nbytes = (bit_length a + 7) / 8 in
  let out_len = match len with
    | None -> if nbytes = 0 then 1 else nbytes
    | Some l ->
      if nbytes > l then invalid_arg "Nat.to_bytes_be: value too large for len";
      l
  in
  let buf = Bytes.make out_len '\000' in
  for i = 0 to nbytes - 1 do
    (* byte i counted from the least significant end *)
    let bit = i * 8 in
    let limb = bit / base_bits and off = bit mod base_bits in
    let v = a.(limb) lsr off in
    let v = if off + 8 > base_bits && limb + 1 < Array.length a
      then v lor (a.(limb + 1) lsl (base_bits - off))
      else v
    in
    Bytes.set buf (out_len - 1 - i) (Char.chr (v land 0xff))
  done;
  Bytes.unsafe_to_string buf

let of_hex s =
  let digit c = match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Nat.of_hex: bad digit"
  in
  let n = String.length s in
  if n = 0 then zero
  else begin
    let nl = ((4 * n) + base_bits - 1) / base_bits in
    let r = Array.make nl 0 in
    for i = 0 to n - 1 do
      (* nibble i counted from the least significant end *)
      let v = digit s.[n - 1 - i] in
      let bit = i * 4 in
      let limb = bit / base_bits and off = bit mod base_bits in
      r.(limb) <- r.(limb) lor ((v lsl off) land limb_mask);
      if off + 4 > base_bits then r.(limb + 1) <- r.(limb + 1) lor (v lsr (base_bits - off))
    done;
    normalize r
  end

let to_hex (a : t) =
  if is_zero a then "0"
  else begin
    let nhex = (bit_length a + 3) / 4 in
    let buf = Bytes.create nhex in
    for i = 0 to nhex - 1 do
      let bit = i * 4 in
      let limb = bit / base_bits and off = bit mod base_bits in
      let v = (a.(limb) lsr off) land 0xf in
      (* a nibble straddles a limb boundary whenever base_bits is not a
         multiple of 4 (62 mod 4 = 2): pull the high bits from the next
         limb when needed *)
      let v = if off + 4 > base_bits && limb + 1 < Array.length a
        then (v lor (a.(limb + 1) lsl (base_bits - off))) land 0xf
        else v
      in
      Bytes.set buf (nhex - 1 - i) "0123456789abcdef".[v]
    done;
    Bytes.unsafe_to_string buf
  end

let ten = of_int 10

let of_decimal s =
  if String.length s = 0 then invalid_arg "Nat.of_decimal: empty";
  let r = ref zero in
  String.iter (fun c ->
      match c with
      | '0' .. '9' -> r := add (mul !r ten) (of_int (Char.code c - Char.code '0'))
      | _ -> invalid_arg "Nat.of_decimal: bad digit")
    s;
  !r

let to_decimal (a : t) =
  if is_zero a then "0"
  else begin
    let chunk = of_int 1_000_000_000 in
    let rec go a acc =
      if is_zero a then acc
      else begin
        let q, r = divmod a chunk in
        let part = to_int r in
        if is_zero q then string_of_int part :: acc
        else go q (Printf.sprintf "%09d" part :: acc)
      end
    in
    String.concat "" (go a [])
  end

let pp fmt a = Format.pp_print_string fmt (to_decimal a)
