(** Arbitrary-precision natural numbers.

    Values are immutable. The representation is a little-endian array of
    62-bit limbs, always normalized (no most-significant zero limbs), so
    structural equality coincides with numerical equality. All functions
    are total on naturals; operations that would produce a negative result
    raise [Invalid_argument].

    {b Platform requirement:} 62-bit limbs assume 63-bit native ints,
    i.e. a 64-bit platform. The module raises [Failure] at load time if
    [Sys.int_size < 63] (32-bit or JavaScript backends are unsupported).
    Multiplicative kernels internally split limbs into 31-bit halves so
    every partial product fits the native int range. *)

type t

val zero : t
val one : t
val two : t

(** [of_int n] converts a non-negative [int]. Raises [Invalid_argument]
    if [n < 0]. *)
val of_int : int -> t

(** [to_int n] converts back to [int]. Raises [Invalid_argument] if the
    value does not fit. *)
val to_int : t -> int

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

(** Number of significant bits; [bit_length zero = 0]. *)
val bit_length : t -> int

(** [testbit n i] is bit [i] (little-endian) of [n]. *)
val testbit : t -> int -> bool

val add : t -> t -> t

(** [sub a b] requires [a >= b]; raises [Invalid_argument] otherwise. *)
val sub : t -> t -> t

val mul : t -> t -> t
val sqr : t -> t

(** [divmod a b] is [(a / b, a mod b)]. Raises [Division_by_zero]. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

(** [is_odd n] is [testbit n 0]. *)
val is_odd : t -> bool

(** Big-endian byte-string conversions. [to_bytes_be ~len n] left-pads
    with zeros to exactly [len] bytes and raises [Invalid_argument] if
    [n] needs more than [len] bytes. *)
val of_bytes_be : string -> t
val to_bytes_be : ?len:int -> t -> string

(** Hexadecimal conversions (lowercase output, case-insensitive input,
    no "0x" prefix). Digits are packed directly against [base_bits]; no
    alignment between digit width and limb width is assumed. *)
val of_hex : string -> t
val to_hex : t -> string

(** Decimal conversions. *)
val of_decimal : string -> t
val to_decimal : t -> string

val pp : Format.formatter -> t -> unit

(** {2 Limb-level kernels}

    Building blocks over raw little-endian limb buffers ([base_bits]-bit
    limbs in plain [int array]s, paired with a significant-limb count).
    These exist for [Modular]'s reduction paths, which run one scalar
    multiplication's worth of field operations through a handful of
    reused scratch buffers instead of allocating a fresh array per limb
    operation. Buffers may hold stale garbage beyond the count: kernels
    read guarded and write unconditionally. Counts returned are trimmed
    (no most-significant zero limbs).

    The linear kernels ([add_into], [sub_into], [addmul1_into]) are
    allocation-free. [mul_limbs_into] allocates internal 31-bit
    half-limb scratch (a 62x62 partial product does not fit a native
    int); hot paths in [Modular] use their own fixed-width half-limb
    kernels instead. *)

(** Bits per limb (62). *)
val base_bits : int

(** [trim_limbs buf n] is the count of significant limbs in [buf.(0..n-1)]. *)
val trim_limbs : int array -> int -> int

(** [of_limbs buf n] copies the first [n] limbs out into a value. *)
val of_limbs : int array -> int -> t

(** [to_limbs_into a buf] copies [a]'s limbs into [buf] (which must be
    large enough) and returns the limb count. *)
val to_limbs_into : t -> int array -> int

val compare_limbs : int array -> int -> int array -> int -> int

(** [add_into dst ndst src nsrc]: [dst := dst + src], returning the new
    count. [dst] needs room for [max ndst nsrc + 1] limbs. *)
val add_into : int array -> int -> int array -> int -> int

(** [sub_into dst ndst src nsrc]: [dst := dst - src] (caller guarantees
    [dst >= src]), returning the new count. *)
val sub_into : int array -> int -> int array -> int -> int

(** [addmul1_into dst ndst src nsrc ~shift m]: fused
    [dst := dst + (src * m) << (shift limbs)] in one pass, returning
    the new count. Requires [0 <= m < 2^31] (keeps every half-limb
    partial product [m * half + carry] within native-int headroom — note
    this is tighter than the 30-bit representation's [m < 2^32] bound)
    and room for [max ndst (nsrc + shift) + 1] limbs. *)
val addmul1_into : int array -> int -> int array -> int -> shift:int -> int -> int

(** [mul_limbs_into dst a na b nb]: [dst := a * b] (schoolbook over
    31-bit halves); [dst] must not alias the inputs and needs [na + nb]
    limbs of room. *)
val mul_limbs_into : int array -> int array -> int -> int array -> int -> int

(** [mul_into dst a b]: product of two values into a scratch buffer. *)
val mul_into : int array -> t -> t -> int
