(** Race-safe compute-once cells — the multicore replacement for
    module-level [lazy] values.

    Forcing an OCaml [lazy] from two domains at once raises
    [CamlinternalLazy.Undefined]; a cell here instead tolerates the
    race with benign duplicate computation: both domains may run the
    thunk, one result wins a compare-and-set, and every caller (then
    and later) observes that single published value. The thunk must be
    pure; its result may be computed more than once but is published
    exactly once. *)

type 'a t

(** [make f] wraps the pure thunk [f]; nothing runs until {!force}. *)
val make : (unit -> 'a) -> 'a t

(** First caller(s) compute, exactly one result is published, everyone
    returns the published (physically equal) value. *)
val force : 'a t -> 'a

(** Has a value been published yet? (Testing/diagnostics.) *)
val is_forced : 'a t -> bool
