(* Fixed-size domain-pool executor.

   One pool owns [domains - 1] worker domains plus the calling domain:
   a parallel call splits its index space into chunks, pushes helper
   thunks to the workers, and the caller itself chews chunks until the
   space is exhausted — so the calling thread always makes progress and
   nested parallel calls on the same pool cannot deadlock (the inner
   caller simply claims every inner chunk itself if all workers are
   busy).

   Determinism contract (pinned by test/test_parallel.ml):
   - [parallel_map] / [parallel_for] write results by index, so their
     output is identical for every pool size, chunk size, and
     schedule.
   - [parallel_reduce] folds chunk results in chunk order; its result
     is independent of pool size and schedule, and independent of the
     chunk size too whenever [fold] is associative (the default chunk
     size is fixed, not derived from the pool, so even non-associative
     folds give one answer per input).
   - When a chunk body raises, every chunk still runs; the exception
     with the *smallest* chunk index is re-raised in the caller with
     its original payload and backtrace — the same exception the plain
     serial loop would have raised first.

   Workers hold no work-specific state of their own; per-domain scratch
   (Modular's reduction buffers, Sha256's message schedule) lives in
   Domain.DLS and materializes lazily in whichever domain touches it,
   so any chunk can run on any worker. *)

type t = {
  extra : int;                         (* worker domains, excluding the caller *)
  jobs : (unit -> unit) Queue.t;       (* pending helper thunks *)
  m : Mutex.t;
  cv : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t array;
}

let size t = t.extra + 1

let worker_main t =
  let rec loop () =
    Mutex.lock t.m;
    let rec take () =
      if t.closed then None
      else
        match Queue.take_opt t.jobs with
        | Some j -> Some j
        | None -> Condition.wait t.cv t.m; take ()
    in
    let job = take () in
    Mutex.unlock t.m;
    match job with
    | None -> ()
    | Some j ->
      (* helper thunks capture their own exceptions; this is belt and
         braces so a worker never dies *)
      (try j () with _ -> ());
      loop ()
  in
  loop ()

let create ?(domains = 1) () =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    { extra = domains - 1;
      jobs = Queue.create ();
      m = Mutex.create ();
      cv = Condition.create ();
      closed = false;
      workers = [||] }
  in
  t.workers <- Array.init t.extra (fun _ -> Domain.spawn (fun () -> worker_main t));
  t

let shutdown t =
  Mutex.lock t.m;
  let first = not t.closed in
  t.closed <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.m;
  if first then Array.iter Domain.join t.workers

(* Run [body 0 .. body (nchunks-1)], sharing chunks with the workers.
   Serial fallback (no workers, or nothing to share) runs the plain
   ascending loop — bit-for-bit the pre-pool behavior. *)
let run_chunks t nchunks body =
  if nchunks > 0 then begin
    if t.extra = 0 || nchunks = 1 then
      for i = 0 to nchunks - 1 do body i done
    else begin
      let next = Atomic.make 0 in
      let completed = Atomic.make 0 in
      let err = Atomic.make None in
      let dm = Mutex.create () and dcv = Condition.create () in
      (* keep the failure with the smallest chunk index: deterministic
         regardless of which domain hit which chunk first *)
      let rec note_err i e bt =
        let cur = Atomic.get err in
        match cur with
        | Some (j, _, _) when j <= i -> ()
        | _ ->
          if not (Atomic.compare_and_set err cur (Some (i, e, bt))) then note_err i e bt
      in
      let work () =
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= nchunks then continue := false
          else begin
            (try body i
             with e -> note_err i e (Printexc.get_raw_backtrace ()));
            let c = 1 + Atomic.fetch_and_add completed 1 in
            if c = nchunks then begin
              (* wake the caller; the lock pairs with its check-then-wait *)
              Mutex.lock dm; Condition.broadcast dcv; Mutex.unlock dm
            end
          end
        done
      in
      let helpers = min t.extra (nchunks - 1) in
      Mutex.lock t.m;
      if t.closed then begin
        Mutex.unlock t.m;
        invalid_arg "Pool: parallel call after shutdown"
      end;
      for _ = 1 to helpers do Queue.add work t.jobs done;
      Condition.broadcast t.cv;
      Mutex.unlock t.m;
      work ();
      Mutex.lock dm;
      while Atomic.get completed < nchunks do Condition.wait dcv dm done;
      Mutex.unlock dm;
      match Atomic.get err with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

(* ~8 chunks per participant balances uneven per-item cost without
   drowning small inputs in scheduling overhead. *)
let default_chunk t n = max 1 ((n + (8 * size t) - 1) / (8 * size t))

let parallel_for t ?chunk n f =
  if n > 0 then begin
    let csize =
      match chunk with Some c when c >= 1 -> c | Some _ -> 1 | None -> default_chunk t n
    in
    let nchunks = (n + csize - 1) / csize in
    run_chunks t nchunks (fun ci ->
        let lo = ci * csize in
        let hi = min n (lo + csize) in
        for i = lo to hi - 1 do f i done)
  end

let parallel_map t ?chunk f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    (* seed the result array from element 0 (computed in the caller, so
       an exception there propagates as in a serial map) *)
    let r0 = f arr.(0) in
    let out = Array.make n r0 in
    parallel_for t ?chunk (n - 1) (fun j ->
        let i = j + 1 in
        out.(i) <- f arr.(i));
    out
  end

(* Fixed default so the chunk boundaries — and hence the result for a
   non-associative [fold] — do not depend on the pool size. *)
let reduce_chunk = 32

let parallel_reduce t ?chunk ~map ~fold ~init arr =
  let n = Array.length arr in
  if n = 0 then init
  else begin
    let csize = match chunk with Some c when c >= 1 -> c | Some _ -> 1 | None -> reduce_chunk in
    let nchunks = (n + csize - 1) / csize in
    let partial = Array.make nchunks None in
    run_chunks t nchunks (fun ci ->
        let lo = ci * csize in
        let hi = min n (lo + csize) in
        let acc = ref (map arr.(lo)) in
        for i = lo + 1 to hi - 1 do acc := fold !acc (map arr.(i)) done;
        partial.(ci) <- Some !acc);
    Array.fold_left
      (fun acc p -> match p with Some v -> fold acc v | None -> acc)
      init partial
  end

(* --- the process-wide default pool ------------------------------------- *)

let env_domains () =
  match Sys.getenv_opt "DDEMOS_DOMAINS" with
  | None -> 1
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some d when d >= 1 -> min d 64
     | Some _ | None -> 1)

let default_m = Mutex.create ()
let default_pool = ref None

let get_default () =
  Mutex.lock default_m;
  let t =
    match !default_pool with
    | Some t -> t
    | None ->
      let t = create ~domains:(env_domains ()) () in
      default_pool := Some t;
      (* join the workers on exit so the process never waits on an
         idle domain parked in Condition.wait *)
      at_exit (fun () -> shutdown t);
      t
  in
  Mutex.unlock default_m;
  t
