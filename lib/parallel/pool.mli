(** Fixed-size domain-pool executor.

    A pool of [domains] participants: [domains - 1] persistent worker
    domains plus the calling domain, which always participates in its
    own parallel calls (so nested calls cannot deadlock and a pool of
    size 1 degrades to exactly the serial loop).

    Determinism contract:
    - {!parallel_for} / {!parallel_map} assign results by index —
      output is identical for every pool size and schedule.
    - {!parallel_reduce} combines chunk results in ascending chunk
      order with a pool-size-independent default chunk, so its result
      does not depend on the pool either.
    - If a body raises, all chunks still run and the exception from the
      {e smallest} chunk index is re-raised in the caller with its
      original payload and backtrace — matching what the serial loop
      would have raised first. *)

type t

(** [create ~domains ()] spawns [domains - 1] worker domains.
    [domains] defaults to 1 (purely serial, spawns nothing).
    @raise Invalid_argument if [domains < 1]. *)
val create : ?domains:int -> unit -> t

(** Total participants: worker domains + the caller. *)
val size : t -> int

(** [parallel_for t n f] runs [f 0 .. f (n-1)], partitioned into chunks
    of [?chunk] indices (default: about 8 chunks per participant).
    [f] must only write to disjoint, index-addressed state. *)
val parallel_for : t -> ?chunk:int -> int -> (int -> unit) -> unit

(** [parallel_map t f arr] is [Array.map f arr] with elements computed
    in parallel; result order always matches [arr]. *)
val parallel_map : t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array

(** [parallel_reduce t ~map ~fold ~init arr] folds [map arr.(i)] over
    chunks, then combines the per-chunk partials in chunk order
    starting from [init]. Deterministic for any pool size; [fold]
    should be associative for the result to also be independent of
    [?chunk] (default 32, fixed — not pool-derived). *)
val parallel_reduce :
  t -> ?chunk:int -> map:('a -> 'b) -> fold:('b -> 'b -> 'b) -> init:'b ->
  'a array -> 'b

(** Close the pool and join its workers. Subsequent parallel calls on
    it raise [Invalid_argument]. Idempotent. *)
val shutdown : t -> unit

(** Pool size requested by the [DDEMOS_DOMAINS] environment variable
    (default 1, clamped to [1, 64]; malformed values read as 1). *)
val env_domains : unit -> int

(** The lazily created process-wide pool, sized by {!env_domains} at
    first use and shut down via [at_exit]. Callers that take a
    [?pool] argument default to this. *)
val get_default : unit -> t
