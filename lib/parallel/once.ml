(* A race-safe compute-once cell: the multicore-friendly replacement
   for [lazy] at module scope. [Lazy.force] from two domains raises
   [CamlinternalLazy.Undefined] on a race; this cell instead allows
   benign duplicate computation — both domains may run [f], exactly one
   result is published via a compare-and-set, and every caller returns
   the published value, so all domains agree on one (physically equal)
   result. [f] must therefore be pure (and cheap enough to run twice in
   the unlucky window); every compute-once cache in this codebase
   (precomp tables, the default group context) satisfies that. *)

type 'a t = {
  f : unit -> 'a;
  cell : 'a option Atomic.t;
}

let make f = { f; cell = Atomic.make None }

let force t =
  match Atomic.get t.cell with
  | Some v -> v
  | None ->
    let v = t.f () in
    if Atomic.compare_and_set t.cell None (Some v) then v
    else begin
      match Atomic.get t.cell with
      | Some w -> w
      | None -> v (* unreachable: the cell is never reset *)
    end

let is_forced t = Atomic.get t.cell <> None
