(** Deterministic random byte generator (ChaCha20 keystream, SHA-256
    seeded). Replaces an OS entropy source so that every election,
    test, and simulation is exactly replayable from its seed. *)

type t

val create : seed:string -> t

(** [bytes t n] draws [n] fresh bytes. *)
(* lint: secret *)
val bytes : t -> int -> string

val byte : t -> int

(** [int t bound] is uniform in [0, bound); rejection-sampled, so it is
    exactly uniform. Raises [Invalid_argument] if [bound <= 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** Eight fresh bytes — the paper's 64-bit receipts and serial numbers. *)
(* lint: secret *)
val uint64_string : t -> string

(** [fork t ~label] derives an independent child generator; drawing from
    the child does not perturb the parent beyond the fork point. *)
val fork : t -> label:string -> t
