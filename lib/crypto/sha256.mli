(** SHA-256 (FIPS 180-4).

    Domain-safe: the compression function's message-schedule scratch is
    domain-local ([Domain.DLS]), so distinct domains may hash
    concurrently. A single [ctx] value must still not be shared between
    domains. *)

type ctx

val init : unit -> ctx

(** Absorb more input. *)
val feed : ctx -> string -> unit

(** Pad, finish, and return the 32-byte digest. The context must not be
    reused afterwards. *)
(* lint: public — one-way: a digest does not reveal its preimage *)
val finalize : ctx -> string

(** One-shot digest of a string. *)
(* lint: public — one-way: a digest does not reveal its preimage *)
val digest : string -> string

(** One-shot digest of the concatenation of the given parts. *)
(* lint: public — one-way: a digest does not reveal its preimage *)
val digest_list : string list -> string

(** Lowercase hex of an arbitrary byte string (test/debug helper). *)
val hex_of_string : string -> string
