(* FIPS 180-4 SHA-256, pure OCaml over int32 words. *)

let k = [|
  0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl; 0x59f111f1l;
  0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l; 0x243185bel; 0x550c7dc3l;
  0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l; 0xc19bf174l; 0xe49b69c1l; 0xefbe4786l;
  0x0fc19dc6l; 0x240ca1ccl; 0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal;
  0x983e5152l; 0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
  0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl; 0x53380d13l;
  0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l; 0xa2bfe8a1l; 0xa81a664bl;
  0xc24b8b70l; 0xc76c51a3l; 0xd192e819l; 0xd6990624l; 0xf40e3585l; 0x106aa070l;
  0x19a4c116l; 0x1e376c08l; 0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al;
  0x5b9cca4fl; 0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
  0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l;
|]

type ctx = {
  mutable h : int32 array;       (* 8 chaining words *)
  buf : Bytes.t;                 (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int;           (* total bytes processed *)
}

let init () = {
  h = [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al;
         0x510e527fl; 0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l |];
  buf = Bytes.create 64;
  buf_len = 0;
  total = 0;
}

let ( +% ) = Int32.add
let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))
let shr = Int32.shift_right_logical
let ( ^% ) = Int32.logxor
let ( &% ) = Int32.logand
let lnot32 = Int32.lognot

(* Message-schedule scratch. One 64-word array per domain (not per
   call) keeps the hot path allocation-free while letting every domain
   hash concurrently. *)
let w_key = Domain.DLS.new_key (fun () -> Array.make 64 0l)

let compress ctx block off =
  let w = Domain.DLS.get w_key in
  for i = 0 to 15 do
    let b j = Int32.of_int (Char.code (Bytes.get block (off + 4 * i + j))) in
    w.(i) <- Int32.logor (Int32.shift_left (b 0) 24)
        (Int32.logor (Int32.shift_left (b 1) 16)
           (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))
  done;
  for i = 16 to 63 do
    let s0 = rotr w.(i-15) 7 ^% rotr w.(i-15) 18 ^% shr w.(i-15) 3 in
    let s1 = rotr w.(i-2) 17 ^% rotr w.(i-2) 19 ^% shr w.(i-2) 10 in
    w.(i) <- w.(i-16) +% s0 +% w.(i-7) +% s1
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 ^% rotr !e 11 ^% rotr !e 25 in
    let ch = (!e &% !f) ^% (lnot32 !e &% !g) in
    let t1 = !hh +% s1 +% ch +% k.(i) +% w.(i) in
    let s0 = rotr !a 2 ^% rotr !a 13 ^% rotr !a 22 in
    let maj = (!a &% !b) ^% (!a &% !c) ^% (!b &% !c) in
    let t2 = s0 +% maj in
    hh := !g; g := !f; f := !e; e := !d +% t1;
    d := !c; c := !b; b := !a; a := t1 +% t2
  done;
  h.(0) <- h.(0) +% !a; h.(1) <- h.(1) +% !b; h.(2) <- h.(2) +% !c; h.(3) <- h.(3) +% !d;
  h.(4) <- h.(4) +% !e; h.(5) <- h.(5) +% !f; h.(6) <- h.(6) +% !g; h.(7) <- h.(7) +% !hh

let feed_bytes ctx (s : Bytes.t) pos len =
  ctx.total <- ctx.total + len;
  let pos = ref pos and len = ref len in
  if ctx.buf_len > 0 then begin
    let need = 64 - ctx.buf_len in
    let take = if !len < need then !len else need in
    Bytes.blit s !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take; len := !len - take;
    if ctx.buf_len = 64 then begin compress ctx ctx.buf 0; ctx.buf_len <- 0 end
  end;
  while !len >= 64 do
    compress ctx s !pos;
    pos := !pos + 64; len := !len - 64
  done;
  if !len > 0 then begin
    Bytes.blit s !pos ctx.buf 0 !len;
    ctx.buf_len <- !len
  end

let feed ctx s = feed_bytes ctx (Bytes.unsafe_of_string s) 0 (String.length s)

let finalize ctx =
  let total_bits = ctx.total * 8 in
  let pad_len =
    let r = (ctx.total + 1 + 8) mod 64 in
    1 + (if r = 0 then 0 else 64 - r) + 8
  in
  let pad = Bytes.make pad_len '\000' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad (pad_len - 1 - i) (Char.chr ((total_bits lsr (8 * i)) land 0xff))
  done;
  feed_bytes ctx pad 0 pad_len;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    Bytes.set out (4*i) (Char.chr (Int32.to_int (shr v 24) land 0xff));
    Bytes.set out (4*i+1) (Char.chr (Int32.to_int (shr v 16) land 0xff));
    Bytes.set out (4*i+2) (Char.chr (Int32.to_int (shr v 8) land 0xff));
    Bytes.set out (4*i+3) (Char.chr (Int32.to_int v land 0xff))
  done;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  feed ctx s;
  finalize ctx

let digest_list parts =
  let ctx = init () in
  List.iter (feed ctx) parts;
  finalize ctx

let hex_of_string s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b
