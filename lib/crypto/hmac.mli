(** HMAC-SHA256 (RFC 2104). *)

(** [sha256 ~key msg] is the 32-byte HMAC tag. *)
(* lint: public — a PRF output reveals nothing about the key *)
val sha256 : key:string -> string -> string

(** [verify ~key ~mac msg] checks [mac] in constant time. *)
val verify : key:string -> mac:string -> string -> bool
