(** Domain-separated SHA-256 Merkle trees over byte-string leaves.

    Used by the streaming election pipeline: each on-disk segment chunk
    carries a Merkle root over its record payloads, and a small top-level
    tree over the chunk roots commits to the whole segment. Auditors can
    then verify one chunk ("slice") against the top root without reading
    any other chunk.

    Hashing is domain-separated to rule out leaf/node confusion:
    [leaf x = H (0x00 || x)] and [node l r = H (0x01 || l || r)]. The
    tree shape is the canonical unbalanced binary tree used by certificate
    transparency: a list of [n] leaves splits at [k], the largest power of
    two strictly less than [n] (so a left-complete tree), and the empty
    tree hashes to [H ("")]. The incremental builder and [root_of_leaves]
    agree on this shape for every [n]. *)

(** Hash of a single leaf payload: [H (0x00 || payload)]. *)
(* lint: public — one-way: a digest does not reveal its preimage *)
val leaf_hash : string -> string

(** Interior node hash: [H (0x01 || left || right)]. *)
(* lint: public *)
val node_hash : string -> string -> string

(** Root of the empty tree, [H ("")]. *)
val empty_root : string

(** Incremental builder: absorbs leaves one at a time keeping only the
    O(log n) frontier of complete-subtree peaks, so a segment writer can
    commit to millions of leaves in constant memory. *)
type builder

val create : unit -> builder

(** Leaves absorbed so far. *)
val count : builder -> int

(** Absorb the next leaf payload (hashed with [leaf_hash] internally). *)
val add : builder -> string -> unit

(** Absorb an already-hashed leaf (e.g. a per-chunk root promoted into a
    top-level tree over chunk roots). *)
val add_hash : builder -> string -> unit

(** Root over the leaves absorbed so far. Does not disturb the builder:
    more leaves may be added afterwards. *)
(* lint: public — a root is a hash commitment, not its preimages *)
val root : builder -> string

(** One-shot root of a list of leaf payloads. Equal to feeding them to a
    fresh builder in order. *)
(* lint: public *)
val root_of_leaves : string list -> string

(** Authentication path for leaf [index] (0-based) among [leaves]:
    sibling hashes from the leaf up to the root, each tagged with the
    side the sibling sits on. *)
type step = L of string | R of string

(** [proof_of_hashes hs i] — authentication path for position [i] in the
    list of already-hashed leaves [hs]. Raises [Invalid_argument] if out
    of range. *)
(* lint: public — sibling digests only *)
val proof_of_hashes : string list -> int -> step list

(** [verify ~root ~leaf_digest path] — check that [leaf_digest] (an
    already-hashed leaf, e.g. a chunk root) folds up through [path] to
    [root]. The position is bound implicitly by the path's side tags. *)
val verify : root:string -> leaf_digest:string -> step list -> bool
