(** AES-128 (FIPS 197) and CBC mode with PKCS#7 padding.

    This is the [[vote-code]]{_msk} primitive of the paper: the EA
    encrypts every vote code in the BB initialization data under the
    master key [msk] with AES-128-CBC and a fresh random IV. *)

type key

(** Expand a 16-byte key into its round-key schedule. *)
val expand_key : string -> key

(** Encrypt / decrypt one 16-byte block. *)
val encrypt_block : key -> string -> string
val decrypt_block : key -> string -> string

(** [cbc_encrypt ~key ~iv msg] PKCS#7-pads [msg] and encrypts it;
    [key] is the 16-byte raw key, [iv] the 16-byte initialization
    vector. The IV is not prepended; callers carry it alongside. *)
(* lint: public — ciphertext is publishable by design (IND-CPA) *)
val cbc_encrypt : key:string -> iv:string -> string -> string

(** Inverse of {!cbc_encrypt}. Raises [Invalid_argument] on corrupt
    length or padding. *)
val cbc_decrypt : key:string -> iv:string -> string -> string
