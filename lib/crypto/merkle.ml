(* Domain-separated SHA-256 Merkle trees (RFC 6962 shape). *)

let leaf_hash payload = Sha256.digest_list [ "\x00"; payload ]
let node_hash l r = Sha256.digest_list [ "\x01"; l; r ]
let empty_root = Sha256.digest ""

(* Largest power of two strictly less than n (n >= 2). *)
let split_point n =
  let k = ref 1 in
  while !k * 2 < n do
    k := !k * 2
  done;
  !k

(* Incremental frontier: peaks.(i) holds the root of a complete subtree
   of 2^i leaves, mirroring the binary representation of [count]. Adding
   a leaf carries like binary increment. Bounded by 63 peaks. *)
type builder = { mutable peaks : string option array; mutable n : int }

let create () = { peaks = Array.make 8 None; n = 0 }
let count b = b.n

let ensure b i =
  if i >= Array.length b.peaks then begin
    let p = Array.make (max (i + 1) (2 * Array.length b.peaks)) None in
    Array.blit b.peaks 0 p 0 (Array.length b.peaks);
    b.peaks <- p
  end

let add_hash b h =
  let rec carry i h =
    ensure b i;
    match b.peaks.(i) with
    | None -> b.peaks.(i) <- Some h
    | Some l ->
        b.peaks.(i) <- None;
        carry (i + 1) (node_hash l h)
  in
  carry 0 h;
  b.n <- b.n + 1

let add b payload = add_hash b (leaf_hash payload)

(* Fold the peaks right-to-left: the rightmost (lowest) peak is the
   deepest incomplete suffix, and each higher peak hangs it on its
   right. This reproduces the left-complete recursive split. *)
let root b =
  if b.n = 0 then empty_root
  else begin
    let acc = ref None in
    for i = 0 to Array.length b.peaks - 1 do
      match b.peaks.(i) with
      | None -> ()
      | Some p ->
          acc := Some (match !acc with None -> p | Some r -> node_hash p r)
    done;
    match !acc with Some r -> r | None -> assert false
  end

let rec root_of_hashes = function
  | [] -> empty_root
  | [ h ] -> h
  | hs ->
      let n = List.length hs in
      let k = split_point n in
      let left = List.filteri (fun i _ -> i < k) hs in
      let right = List.filteri (fun i _ -> i >= k) hs in
      node_hash (root_of_hashes left) (root_of_hashes right)

let root_of_leaves leaves = root_of_hashes (List.map leaf_hash leaves)

type step = L of string | R of string

let proof_of_hashes hs index =
  let n = List.length hs in
  if index < 0 || index >= n then invalid_arg "Merkle.proof_of_hashes";
  let rec go hs n index =
    if n = 1 then []
    else begin
      let k = split_point n in
      let left = List.filteri (fun i _ -> i < k) hs in
      let right = List.filteri (fun i _ -> i >= k) hs in
      if index < k then go left k index @ [ R (root_of_hashes right) ]
      else go right (n - k) (index - k) @ [ L (root_of_hashes left) ]
    end
  in
  go hs n index

let verify ~root ~leaf_digest path =
  let acc =
    List.fold_left
      (fun acc step ->
        match step with
        | L sib -> node_hash sib acc
        | R sib -> node_hash acc sib)
      leaf_digest path
  in
  String.equal acc root
