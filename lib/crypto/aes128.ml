(* AES-128 (FIPS 197), table-free byte-oriented implementation, plus
   CBC mode with PKCS#7 padding. Used to hide vote codes in the BB
   initialization data, exactly as the paper's AES-128-CBC$ usage. *)

(* Both tables are written only during module initialization (single
   domain, before any spawn) and are read-only ever after. *)
(* lint: allow domain-safe-state — init-once at load, read-only after *)
let sbox = Bytes.create 256
(* lint: allow domain-safe-state — init-once at load, read-only after *)
let inv_sbox = Bytes.create 256

(* Build the S-box from the finite-field definition: multiplicative
   inverse in GF(2^8) followed by the affine transform. *)
let () =
  let xtime b = let b = b lsl 1 in if b land 0x100 <> 0 then (b lxor 0x11b) land 0xff else b in
  let gmul a b =
    let acc = ref 0 and a = ref a and b = ref b in
    for _ = 0 to 7 do
      if !b land 1 = 1 then acc := !acc lxor !a;
      a := xtime !a;
      b := !b lsr 1
    done;
    !acc
  in
  (* inverse by brute force: the table is built once at load time *)
  let inv = Array.make 256 0 in
  for x = 1 to 255 do
    for y = 1 to 255 do
      if gmul x y = 1 then inv.(x) <- y
    done
  done;
  for x = 0 to 255 do
    let i = inv.(x) in
    let rot v n = ((v lsl n) lor (v lsr (8 - n))) land 0xff in
    let s = i lxor rot i 1 lxor rot i 2 lxor rot i 3 lxor rot i 4 lxor 0x63 in
    Bytes.set sbox x (Char.chr s);
    Bytes.set inv_sbox s (Char.chr x)
  done

let sub_byte b = Char.code (Bytes.get sbox b)
let inv_sub_byte b = Char.code (Bytes.get inv_sbox b)

let xtime b = let b = b lsl 1 in if b land 0x100 <> 0 then (b lxor 0x11b) land 0xff else b

let gmul a b =
  let acc = ref 0 and a = ref a and b = ref b in
  for _ = 0 to 7 do
    if !b land 1 = 1 then acc := !acc lxor !a;
    a := xtime !a;
    b := !b lsr 1
  done;
  !acc

type key = int array (* 11 round keys x 16 bytes = 176 bytes *)

let expand_key (k : string) : key =
  if String.length k <> 16 then invalid_arg "Aes128.expand_key: key must be 16 bytes";
  let w = Array.make 176 0 in
  String.iteri (fun i c -> w.(i) <- Char.code c) k;
  let rcon = ref 1 in
  for i = 4 to 43 do
    let t = Array.init 4 (fun j -> w.(4 * (i - 1) + j)) in
    let t =
      if i mod 4 = 0 then begin
        let rotated = [| t.(1); t.(2); t.(3); t.(0) |] in
        let subbed = Array.map sub_byte rotated in
        subbed.(0) <- subbed.(0) lxor !rcon;
        rcon := xtime !rcon;
        subbed
      end else t
    in
    for j = 0 to 3 do
      w.(4 * i + j) <- w.(4 * (i - 4) + j) lxor t.(j)
    done
  done;
  w

let add_round_key st (w : key) round =
  for i = 0 to 15 do st.(i) <- st.(i) lxor w.(16 * round + i) done

let mix_columns st =
  for c = 0 to 3 do
    let a0 = st.(4*c) and a1 = st.(4*c+1) and a2 = st.(4*c+2) and a3 = st.(4*c+3) in
    st.(4*c)   <- gmul a0 2 lxor gmul a1 3 lxor a2 lxor a3;
    st.(4*c+1) <- a0 lxor gmul a1 2 lxor gmul a2 3 lxor a3;
    st.(4*c+2) <- a0 lxor a1 lxor gmul a2 2 lxor gmul a3 3;
    st.(4*c+3) <- gmul a0 3 lxor a1 lxor a2 lxor gmul a3 2
  done

let inv_mix_columns st =
  for c = 0 to 3 do
    let a0 = st.(4*c) and a1 = st.(4*c+1) and a2 = st.(4*c+2) and a3 = st.(4*c+3) in
    st.(4*c)   <- gmul a0 14 lxor gmul a1 11 lxor gmul a2 13 lxor gmul a3 9;
    st.(4*c+1) <- gmul a0 9 lxor gmul a1 14 lxor gmul a2 11 lxor gmul a3 13;
    st.(4*c+2) <- gmul a0 13 lxor gmul a1 9 lxor gmul a2 14 lxor gmul a3 11;
    st.(4*c+3) <- gmul a0 11 lxor gmul a1 13 lxor gmul a2 9 lxor gmul a3 14
  done

(* State layout: st.(4*c + r) is row r, column c (column-major, matching
   the byte order of the input block). *)
let shift_rows st =
  let tmp = Array.copy st in
  for r = 1 to 3 do
    for c = 0 to 3 do
      st.(4*c + r) <- tmp.(4 * ((c + r) mod 4) + r)
    done
  done

let inv_shift_rows st =
  let tmp = Array.copy st in
  for r = 1 to 3 do
    for c = 0 to 3 do
      st.(4 * ((c + r) mod 4) + r) <- tmp.(4*c + r)
    done
  done

let encrypt_block (w : key) (block : string) : string =
  if String.length block <> 16 then invalid_arg "Aes128.encrypt_block: need 16 bytes";
  let st = Array.init 16 (fun i -> Char.code block.[i]) in
  add_round_key st w 0;
  for round = 1 to 9 do
    for i = 0 to 15 do st.(i) <- sub_byte st.(i) done;
    shift_rows st;
    mix_columns st;
    add_round_key st w round
  done;
  for i = 0 to 15 do st.(i) <- sub_byte st.(i) done;
  shift_rows st;
  add_round_key st w 10;
  String.init 16 (fun i -> Char.chr st.(i))

let decrypt_block (w : key) (block : string) : string =
  if String.length block <> 16 then invalid_arg "Aes128.decrypt_block: need 16 bytes";
  let st = Array.init 16 (fun i -> Char.code block.[i]) in
  add_round_key st w 10;
  for round = 9 downto 1 do
    inv_shift_rows st;
    for i = 0 to 15 do st.(i) <- inv_sub_byte st.(i) done;
    add_round_key st w round;
    inv_mix_columns st
  done;
  inv_shift_rows st;
  for i = 0 to 15 do st.(i) <- inv_sub_byte st.(i) done;
  add_round_key st w 0;
  String.init 16 (fun i -> Char.chr st.(i))

let xor16 a b = String.init 16 (fun i -> Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let cbc_encrypt ~key ~iv plaintext =
  if String.length iv <> 16 then invalid_arg "Aes128.cbc_encrypt: iv must be 16 bytes";
  let w = expand_key key in
  let pad = 16 - (String.length plaintext mod 16) in
  let padded = plaintext ^ String.make pad (Char.chr pad) in
  let nblocks = String.length padded / 16 in
  let buf = Buffer.create (String.length padded) in
  let prev = ref iv in
  for i = 0 to nblocks - 1 do
    let blk = String.sub padded (16 * i) 16 in
    let c = encrypt_block w (xor16 blk !prev) in
    Buffer.add_string buf c;
    prev := c
  done;
  Buffer.contents buf

let cbc_decrypt ~key ~iv ciphertext =
  if String.length iv <> 16 then invalid_arg "Aes128.cbc_decrypt: iv must be 16 bytes";
  let len = String.length ciphertext in
  if len = 0 || len mod 16 <> 0 then invalid_arg "Aes128.cbc_decrypt: bad length";
  let w = expand_key key in
  let buf = Buffer.create len in
  let prev = ref iv in
  for i = 0 to len / 16 - 1 do
    let c = String.sub ciphertext (16 * i) 16 in
    Buffer.add_string buf (xor16 (decrypt_block w c) !prev);
    prev := c
  done;
  let padded = Buffer.contents buf in
  let pad = Char.code padded.[len - 1] in
  if pad < 1 || pad > 16 then invalid_arg "Aes128.cbc_decrypt: bad padding";
  for i = len - pad to len - 1 do
    if Char.code padded.[i] <> pad then invalid_arg "Aes128.cbc_decrypt: bad padding"
  done;
  String.sub padded 0 (len - pad)
